// Durability & restart recovery tests for the serving tier.
//
// The central harness is differential, mirroring serve_shard_test: a
// durable SimilarityService and a never-crashed memory-only twin are fed
// the identical Insert/Delete/Query/Compact schedule; at random points
// the durable service is destroyed mid-cycle (no flush, no final
// compaction — the file-state equivalent of kill -9, since every op's
// WAL frame is written before the op returns) and reopened from its
// data_dir. The reopened service must resume at the exact pre-crash
// epoch and answer Query/BatchQuery/QueryTopK byte-identically to the
// twin — and, at the end, to a fresh batch self-join over the
// survivors. SSJOIN_RECOVERY_SEEDS widens the sweep in nightly CI;
// SSJOIN_DIFF_PREDICATES filters predicates for matrix jobs.
//
// Around the harness: checkpoint/WAL codec round-trip property tests
// (zero-record, single-token, all-tombstoned, post-compaction states),
// WAL torn-tail truncation at every byte boundary of the final frame,
// checkpoint atomicity under injected write failure, and corrupted /
// mismatched checkpoint rejection.

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "index/index_io.h"
#include "serve/checkpoint.h"
#include "serve/similarity_service.h"
#include "serve/wal.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A scrubbed service data directory (stale files from a previous test
/// run would otherwise restore into the new service).
std::string FreshDataDir(const std::string& name) {
  std::string dir = TempPath(name);
  EXPECT_TRUE(EnsureDataDir(dir).ok());
  for (const std::string& file :
       {CheckpointFilePath(dir), CheckpointFilePath(dir) + ".tmp",
        WalFilePath(dir), WalFilePath(dir) + ".tmp"}) {
    ::unlink(file.c_str());
  }
  for (uint64_t id : ListSegmentFiles(dir)) {
    ::unlink(SegmentFilePath(dir, id).c_str());
  }
  return dir;
}

/// Pins a test to the materialized (budget = 0) loader even when the CI
/// harness forces the mapped path via SSJOIN_RESIDENT_BUDGET: the deep
/// verification under test (whole-file CRC, stored-vs-rebuilt bitmap
/// comparison) is by design exclusive to the materialized path — a
/// mapped open cannot run it without faulting the whole file in.
class ScopedMaterialized {
 public:
  ScopedMaterialized() {
    const char* env = std::getenv("SSJOIN_RESIDENT_BUDGET");
    if (env != nullptr) {
      saved_ = env;
      had_value_ = true;
      ::unsetenv("SSJOIN_RESIDENT_BUDGET");
    }
  }
  ~ScopedMaterialized() {
    if (had_value_) ::setenv("SSJOIN_RESIDENT_BUDGET", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

/// The opposite pin: forces the mapped path regardless of harness.
class ScopedMapped {
 public:
  explicit ScopedMapped(uint64_t budget_bytes) {
    const char* env = std::getenv("SSJOIN_RESIDENT_BUDGET");
    if (env != nullptr) {
      saved_ = env;
      had_value_ = true;
    }
    ::setenv("SSJOIN_RESIDENT_BUDGET", std::to_string(budget_bytes).c_str(),
             1);
  }
  ~ScopedMapped() {
    if (had_value_) {
      ::setenv("SSJOIN_RESIDENT_BUDGET", saved_.c_str(), 1);
    } else {
      ::unsetenv("SSJOIN_RESIDENT_BUDGET");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

RecordSet Slice(const RecordSet& corpus, RecordId begin, RecordId end) {
  RecordSet out;
  for (RecordId id = begin; id < end; ++id) {
    out.Add(corpus.record(id), corpus.text(id));
  }
  return out;
}

size_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<size_t>(st.st_size);
}

std::string ReadAll(const std::string& path) {
  Result<std::string> read = ReadFileToString(path);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  return std::move(read).value();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

void ExpectSameMatches(const std::vector<QueryMatch>& expected,
                       const std::vector<QueryMatch>& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << context << " position " << i;
    EXPECT_EQ(expected[i].score, actual[i].score)
        << context << " position " << i << " id " << actual[i].id;
  }
}

std::pair<Record, std::string> MakeRandomRecord(Rng& rng, ZipfTable& zipf) {
  int count = rng.UniformInt(1, 14);
  std::vector<TokenId> tokens;
  for (int t = 0; t < count; ++t) tokens.push_back(zipf.Sample(rng));
  Record record = Record::FromTokens(tokens);
  std::string text;
  for (size_t t = 0; t < record.size(); ++t) {
    if (t > 0) text += ' ';
    text += 'w' + std::to_string(record.token(t));
  }
  record.set_text_length(static_cast<uint32_t>(text.size()));
  return {std::move(record), std::move(text)};
}

std::map<RecordId, std::set<RecordId>> JoinPartners(const RecordSet& corpus,
                                                    const Predicate& pred) {
  RecordSet prepared = corpus;
  Result<std::vector<std::pair<RecordId, RecordId>>> pairs =
      JoinToPairs(&prepared, pred, JoinAlgorithm::kProbeOptMerge);
  EXPECT_TRUE(pairs.ok()) << pairs.status().ToString();
  std::map<RecordId, std::set<RecordId>> partners;
  for (const auto& [a, b] : pairs.value()) {
    partners[a].insert(b);
    partners[b].insert(a);
  }
  return partners;
}

int RecoverySeedCount() {
  const char* env = std::getenv("SSJOIN_RECOVERY_SEEDS");
  if (env == nullptr) return 4;
  int n = std::atoi(env);
  return n > 0 ? n : 4;
}

bool PredicateEnabled(const std::string& name) {
  const char* env = std::getenv("SSJOIN_DIFF_PREDICATES");
  if (env == nullptr) return true;
  return std::string(env).find(name) != std::string::npos;
}

// ---------------------------------------------------------------------
// Record-set codec: the property every other durability guarantee leans
// on — decode(encode(rs)) reproduces records, texts AND corpus
// statistics (doc/term frequencies drive TF-IDF) exactly.

void ExpectSameRecordSet(const RecordSet& expected, const RecordSet& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (RecordId id = 0; id < expected.size(); ++id) {
    const RecordView e = expected.record(id);
    const RecordView a = actual.record(id);
    ASSERT_EQ(e.size(), a.size()) << context << " record " << id;
    for (size_t i = 0; i < e.size(); ++i) {
      EXPECT_EQ(e.token(i), a.token(i)) << context << " record " << id;
      EXPECT_EQ(e.score(i), a.score(i)) << context << " record " << id;
    }
    EXPECT_EQ(e.norm(), a.norm()) << context << " record " << id;
    EXPECT_EQ(e.text_length(), a.text_length()) << context << " record " << id;
    EXPECT_EQ(expected.text(id), actual.text(id)) << context << " record "
                                                  << id;
  }
  EXPECT_EQ(expected.doc_frequencies(), actual.doc_frequencies()) << context;
  EXPECT_EQ(expected.term_frequencies(), actual.term_frequencies()) << context;
  EXPECT_EQ(expected.total_token_occurrences(),
            actual.total_token_occurrences())
      << context;
}

TEST(CheckpointCodecTest, RecordSetRoundTripsExactly) {
  CosinePredicate cosine(0.6);  // irrational weights stress bit-exactness
  for (uint64_t seed = 0; seed < 5; ++seed) {
    RecordSet records = testing_util::MakeRandomRecordSet(
        {.num_records = 40, .vocabulary = 30}, seed * 11 + 1);
    if (seed % 2 == 1) cosine.Prepare(&records);
    std::string encoded;
    EncodeRecordSet(records, &encoded);
    size_t offset = 0;
    Result<RecordSet> decoded = DecodeRecordSet(encoded, &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(offset, encoded.size());
    ExpectSameRecordSet(records, decoded.value(),
                        "seed " + std::to_string(seed));
  }
}

TEST(CheckpointCodecTest, DegenerateRecordSetsRoundTrip) {
  // Zero records.
  RecordSet empty;
  std::string encoded;
  EncodeRecordSet(empty, &encoded);
  size_t offset = 0;
  Result<RecordSet> decoded = DecodeRecordSet(encoded, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 0u);

  // Single-token records, including a token-less (empty) record.
  RecordSet tiny;
  tiny.Add(Record::FromTokens({7}), "w7");
  tiny.Add(Record::FromTokens({0}), "w0");
  tiny.Add(Record::FromTokens(std::vector<TokenId>{}), "");
  encoded.clear();
  EncodeRecordSet(tiny, &encoded);
  offset = 0;
  decoded = DecodeRecordSet(encoded, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameRecordSet(tiny, decoded.value(), "single-token");
}

// ---------------------------------------------------------------------
// Service checkpoint round trip across corpus states.

/// Full byte-compare of `restored` against `expected` over every corpus
/// record's content plus a few random probes.
void ExpectSameService(SimilarityService& expected,
                       SimilarityService& restored, const RecordSet& corpus,
                       uint64_t probe_seed, const std::string& context) {
  ASSERT_EQ(expected.epoch(), restored.epoch()) << context;
  ASSERT_EQ(expected.size(), restored.size()) << context;
  ASSERT_EQ(expected.memtable_size(), restored.memtable_size()) << context;
  ASSERT_EQ(expected.tombstone_count(), restored.tombstone_count()) << context;
  ASSERT_EQ(expected.num_shards(), restored.num_shards()) << context;
  for (RecordId r = 0; r < corpus.size(); ++r) {
    const std::string tag = context + " record " + std::to_string(r);
    ExpectSameMatches(expected.Query(corpus.record(r), corpus.text(r)),
                      restored.Query(corpus.record(r), corpus.text(r)),
                      tag + " query");
    ExpectSameMatches(expected.QueryTopK(corpus.record(r), 6, corpus.text(r)),
                      restored.QueryTopK(corpus.record(r), 6, corpus.text(r)),
                      tag + " topk");
  }
  Rng rng(probe_seed);
  ZipfTable zipf(50, 0.9);
  for (int i = 0; i < 10; ++i) {
    auto [record, text] = MakeRandomRecord(rng, zipf);
    ExpectSameMatches(expected.Query(record.view(), text),
                      restored.Query(record.view(), text),
                      context + " probe " + std::to_string(i));
  }
  if (!corpus.empty()) {
    std::vector<std::vector<QueryMatch>> batch_expected =
        expected.BatchQuery(corpus);
    std::vector<std::vector<QueryMatch>> batch_restored =
        restored.BatchQuery(corpus);
    ASSERT_EQ(batch_expected.size(), batch_restored.size()) << context;
    for (size_t i = 0; i < batch_expected.size(); ++i) {
      ExpectSameMatches(batch_expected[i], batch_restored[i],
                        context + " batch " + std::to_string(i));
    }
  }
}

void RunCheckpointRoundTrip(const Predicate& pred, const std::string& name) {
  struct Case {
    std::string tag;
    RecordSet corpus;
  };
  std::vector<Case> cases;
  cases.push_back({"zero-record", RecordSet()});
  {
    RecordSet single;
    for (TokenId t = 0; t < 12; ++t) {
      single.Add(Record::FromTokens({t % 5}), "w" + std::to_string(t % 5));
    }
    cases.push_back({"single-token", std::move(single)});
  }
  cases.push_back({"random", testing_util::MakeRandomRecordSet(
                                 {.num_records = 50, .vocabulary = 40}, 77)});

  for (Case& c : cases) {
    for (size_t shards : {size_t{1}, size_t{3}}) {
      const std::string context =
          name + " " + c.tag + " shards=" + std::to_string(shards);
      ServiceOptions options;
      options.num_shards = shards;
      options.memtable_limit = 0;  // compactions only where scripted
      options.data_dir = FreshDataDir("cp_roundtrip_" + name + "_" + c.tag +
                                      "_" + std::to_string(shards));
      options.wal_sync = WalSyncPolicy::kNever;
      SimilarityService service(c.corpus, pred, options);
      ASSERT_TRUE(service.durability_status().ok())
          << context << " " << service.durability_status().ToString();

      // Fresh-construction checkpoint (epoch 0, empty WAL).
      {
        Result<std::unique_ptr<SimilarityService>> restored =
            SimilarityService::Open(pred, options);
        ASSERT_TRUE(restored.ok()) << context << " "
                                   << restored.status().ToString();
        ExpectSameService(service, *restored.value(), c.corpus, 5,
                          context + " initial");
      }

      // Post-compaction state with inserts and deletes folded in.
      Rng rng(31);
      ZipfTable zipf(40, 0.9);
      RecordSet contents = c.corpus;
      for (int i = 0; i < 8; ++i) {
        auto [record, text] = MakeRandomRecord(rng, zipf);
        contents.Add(record, text);
        service.Insert(record.view(), text);
      }
      if (!c.corpus.empty()) service.Delete(0);
      service.Compact();
      {
        Result<std::unique_ptr<SimilarityService>> restored =
            SimilarityService::Open(pred, options);
        ASSERT_TRUE(restored.ok()) << context << " "
                                   << restored.status().ToString();
        ExpectSameService(service, *restored.value(), contents, 6,
                          context + " post-compaction");
      }

      // All-tombstoned: delete every record, compact, reopen.
      for (RecordId id = 0; id < contents.size(); ++id) service.Delete(id);
      service.Compact();
      ASSERT_EQ(service.size(), 0u) << context;
      {
        Result<std::unique_ptr<SimilarityService>> restored =
            SimilarityService::Open(pred, options);
        ASSERT_TRUE(restored.ok()) << context << " "
                                   << restored.status().ToString();
        EXPECT_EQ(restored.value()->size(), 0u) << context;
        ExpectSameService(service, *restored.value(), contents, 7,
                          context + " all-tombstoned");
      }
    }
  }
}

TEST(CheckpointRoundTripTest, Overlap) {
  if (!PredicateEnabled("overlap")) GTEST_SKIP();
  OverlapPredicate pred(3);
  RunCheckpointRoundTrip(pred, "overlap");
}

TEST(CheckpointRoundTripTest, Jaccard) {
  if (!PredicateEnabled("jaccard")) GTEST_SKIP();
  JaccardPredicate pred(0.5);
  RunCheckpointRoundTrip(pred, "jaccard");
}

TEST(CheckpointRoundTripTest, Cosine) {
  if (!PredicateEnabled("cosine")) GTEST_SKIP();
  CosinePredicate pred(0.6);
  RunCheckpointRoundTrip(pred, "cosine");
}

// ---------------------------------------------------------------------
// Kill-at-random-op crash differential.

void RunCrashDifferential(const Predicate& pred, const std::string& name,
                          uint64_t seed) {
  constexpr uint32_t kVocabulary = 50;
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = kVocabulary}, seed * 5 + 3);
  ServiceOptions durable_options;
  durable_options.num_shards = seed % 2 == 0 ? 1 : 3;
  durable_options.memtable_limit = 16;  // auto-compactions -> checkpoints
  durable_options.data_dir =
      FreshDataDir("crash_" + name + "_" + std::to_string(seed));
  durable_options.wal_sync =
      seed % 2 == 0 ? WalSyncPolicy::kAlways : WalSyncPolicy::kNever;
  ServiceOptions reference_options = durable_options;
  reference_options.data_dir.clear();

  auto durable =
      std::make_unique<SimilarityService>(corpus, pred, durable_options);
  ASSERT_TRUE(durable->durability_status().ok())
      << durable->durability_status().ToString();
  SimilarityService reference(corpus, pred, reference_options);

  RecordSet contents = corpus;  // every record's content, dead or alive
  std::vector<bool> alive(corpus.size(), true);
  Rng rng(seed * 977 + 41);
  ZipfTable zipf(kVocabulary, 0.9);
  const std::string tag = name + " seed=" + std::to_string(seed);

  auto crash_and_reopen = [&](const std::string& context) {
    // Abrupt destruction mid-cycle: nothing is flushed or compacted on
    // the way down, so the reopened service sees exactly the files a
    // kill -9 would have left.
    durable.reset();
    Result<std::unique_ptr<SimilarityService>> reopened =
        SimilarityService::Open(pred, durable_options);
    ASSERT_TRUE(reopened.ok()) << context << " "
                               << reopened.status().ToString();
    durable = std::move(reopened).value();
    ASSERT_TRUE(durable->durability_status().ok()) << context;
    ASSERT_EQ(durable->epoch(), reference.epoch()) << context;
    ASSERT_EQ(durable->size(), reference.size()) << context;
    ASSERT_EQ(durable->memtable_size(), reference.memtable_size()) << context;
    ASSERT_EQ(durable->tombstone_count(), reference.tombstone_count())
        << context;
  };

  for (int step = 0; step < 60; ++step) {
    const std::string context = tag + " step=" + std::to_string(step);
    uint32_t u = rng.UniformU32(100);
    if (u < 30) {
      auto [record, text] = MakeRandomRecord(rng, zipf);
      contents.Add(record, text);
      alive.push_back(true);
      RecordId expected_id = reference.Insert(record.view(), text);
      EXPECT_EQ(durable->Insert(record.view(), text), expected_id) << context;
    } else if (u < 50) {
      RecordId victim = rng.UniformU32(static_cast<uint32_t>(contents.size()));
      RecordId tried = 0;
      while (!alive[victim] && tried < contents.size()) {
        victim = (victim + 1) % static_cast<RecordId>(contents.size());
        ++tried;
      }
      bool expect_hit = alive[victim];
      EXPECT_EQ(reference.Delete(victim), expect_hit) << context;
      EXPECT_EQ(durable->Delete(victim), expect_hit) << context;
      if (expect_hit) alive[victim] = false;
    } else if (u < 70) {
      auto [record, text] = MakeRandomRecord(rng, zipf);
      ExpectSameMatches(reference.Query(record.view(), text),
                        durable->Query(record.view(), text),
                        context + " query");
      ExpectSameMatches(reference.QueryTopK(record.view(), 5, text),
                        durable->QueryTopK(record.view(), 5, text),
                        context + " topk");
    } else if (u < 82) {
      reference.Compact();
      durable->Compact();
      EXPECT_EQ(durable->epoch(), reference.epoch()) << context;
    } else {
      crash_and_reopen(context + " crash");
    }
  }

  // Final crash mid-cycle (memtables possibly non-empty), then the full
  // differential sweep against the never-crashed twin.
  crash_and_reopen(tag + " final-crash");
  ExpectSameService(reference, *durable, contents, seed * 3 + 9,
                    tag + " final");

  // Ground truth: compact both and hold the recovered service to a fresh
  // batch self-join over the survivors.
  reference.Compact();
  durable->Compact();
  ASSERT_EQ(durable->epoch(), reference.epoch()) << tag;
  RecordSet survivors;
  std::vector<RecordId> gids;
  std::vector<RecordId> locals(contents.size(), 0);
  for (RecordId id = 0; id < contents.size(); ++id) {
    if (alive[id]) {
      locals[id] = static_cast<RecordId>(gids.size());
      survivors.Add(contents.record(id), contents.text(id));
      gids.push_back(id);
    }
  }
  std::map<RecordId, std::set<RecordId>> partners =
      JoinPartners(survivors, pred);
  for (RecordId r = 0; r < contents.size(); ++r) {
    std::vector<QueryMatch> answers =
        durable->Query(contents.record(r), contents.text(r));
    for (const QueryMatch& m : answers) {
      EXPECT_TRUE(alive[m.id]) << tag << " deleted id " << m.id << " answered";
    }
    if (!alive[r]) continue;
    std::set<RecordId> expected;
    for (RecordId p : partners[locals[r]]) expected.insert(gids[p]);
    std::set<RecordId> answered;
    for (const QueryMatch& m : answers) {
      if (m.id != r) answered.insert(m.id);
    }
    EXPECT_EQ(answered, expected)
        << tag << " survivor-join mismatch, record " << r;
  }
}

TEST(CrashRecoveryDifferentialTest, Overlap) {
  if (!PredicateEnabled("overlap")) GTEST_SKIP();
  OverlapPredicate pred(3);
  for (int seed = 0; seed < RecoverySeedCount(); ++seed) {
    RunCrashDifferential(pred, "overlap", static_cast<uint64_t>(seed));
  }
}

TEST(CrashRecoveryDifferentialTest, Jaccard) {
  if (!PredicateEnabled("jaccard")) GTEST_SKIP();
  JaccardPredicate pred(0.5);
  for (int seed = 0; seed < RecoverySeedCount(); ++seed) {
    RunCrashDifferential(pred, "jaccard", static_cast<uint64_t>(seed));
  }
}

TEST(CrashRecoveryDifferentialTest, Cosine) {
  if (!PredicateEnabled("cosine")) GTEST_SKIP();
  CosinePredicate pred(0.6);
  for (int seed = 0; seed < RecoverySeedCount(); ++seed) {
    RunCrashDifferential(pred, "cosine", static_cast<uint64_t>(seed));
  }
}

// ---------------------------------------------------------------------
// Out-of-core base tier: mapped (.sseg mmap) and materialized opens of
// the same data directory must answer byte-identically, and the mapped
// chain must survive crash/reopen exactly like the materialized one.

TEST(OutOfCoreTest, MappedAndMaterializedAnswerIdentically) {
  OverlapPredicate pred(3);
  for (size_t shards : {size_t{1}, size_t{3}}) {
    for (size_t merge_ratio : {size_t{0}, size_t{2}}) {
      const std::string context = "shards=" + std::to_string(shards) +
                                  " ratio=" + std::to_string(merge_ratio);
      RecordSet corpus = testing_util::MakeRandomRecordSet(
          {.num_records = 60, .vocabulary = 40}, 211 + shards);
      ServiceOptions options;
      options.num_shards = shards;
      options.segment_merge_ratio = merge_ratio;
      options.memtable_limit = 12;  // several compactions -> several segments
      options.data_dir = FreshDataDir(
          "ooc_diff_" + std::to_string(shards) + "_" +
          std::to_string(merge_ratio));
      options.wal_sync = WalSyncPolicy::kNever;
      RecordSet contents = corpus;
      {
        SimilarityService service(corpus, pred, options);
        Rng rng(97);
        ZipfTable zipf(40, 0.9);
        for (int i = 0; i < 30; ++i) {
          auto [record, text] = MakeRandomRecord(rng, zipf);
          contents.Add(record, text);
          service.Insert(record.view(), text);
          if (i % 7 == 3) service.Delete(static_cast<RecordId>(i));
        }
        ASSERT_TRUE(service.durability_status().ok()) << context;
      }

      ScopedMaterialized no_env;  // the option below is the only knob
      ServiceOptions materialized_options = options;
      Result<std::unique_ptr<SimilarityService>> materialized =
          SimilarityService::Open(pred, materialized_options);
      ASSERT_TRUE(materialized.ok()) << context << " "
                                     << materialized.status().ToString();
      EXPECT_EQ(materialized.value()->stats().mapped_segments, 0u) << context;

      // A tiny budget maps every segment and pushes all but the newest
      // onto the MADV_RANDOM/DONTNEED side of the advice split — answers
      // must not care.
      ServiceOptions mapped_options = options;
      mapped_options.resident_budget_bytes = 4096;
      Result<std::unique_ptr<SimilarityService>> mapped =
          SimilarityService::Open(pred, mapped_options);
      ASSERT_TRUE(mapped.ok()) << context << " "
                               << mapped.status().ToString();
      const ServiceStats mapped_stats = mapped.value()->stats();
      EXPECT_GT(mapped_stats.mapped_segments, 0u) << context;
      EXPECT_GT(mapped_stats.mapped_bytes, 0u) << context;
      EXPECT_EQ(mapped.value()->resident_budget_bytes(), 4096u) << context;

      ExpectSameService(*materialized.value(), *mapped.value(), contents,
                        13 + shards, "ooc " + context);

      // Write through the MAPPED service (alone — the data_dir takes one
      // writer), compacting so it spills fresh segments to disk and maps
      // them back, then reopen both ways and re-check identity: the
      // mapped write path must leave files the materialized loader fully
      // re-verifies.
      materialized.value().reset();
      {
        Rng rng(181);
        ZipfTable zipf(40, 0.9);
        for (int i = 0; i < 8; ++i) {
          auto [record, text] = MakeRandomRecord(rng, zipf);
          contents.Add(record, text);
          mapped.value()->Insert(record.view(), text);
        }
        mapped.value()->Compact();
        ASSERT_TRUE(mapped.value()->durability_status().ok()) << context;
        mapped.value().reset();
      }
      materialized = SimilarityService::Open(pred, materialized_options);
      ASSERT_TRUE(materialized.ok()) << context << " "
                                     << materialized.status().ToString();
      mapped = SimilarityService::Open(pred, mapped_options);
      ASSERT_TRUE(mapped.ok()) << context << " "
                               << mapped.status().ToString();
      ExpectSameService(*materialized.value(), *mapped.value(), contents,
                        17 + shards, "ooc post-insert " + context);
    }
  }
}

TEST(OutOfCoreTest, MappedChainSurvivesCrashAndReopen) {
  // The full kill-at-random-op differential with the mapped path forced
  // on: the durable (mapped) service must track its memory-only twin
  // byte for byte through crashes, reopens and compactions.
  ScopedMapped mapped(1);
  OverlapPredicate pred(3);
  RunCrashDifferential(pred, "overlap_mapped", 1);
  JaccardPredicate jaccard(0.5);
  RunCrashDifferential(jaccard, "jaccard_mapped", 2);
}

// ---------------------------------------------------------------------
// WAL framing: torn tails are detected by CRC, truncated, and never
// propagated; everything before the tear survives.

TEST(WalTest, TornTailTruncatedAtEveryByteBoundary) {
  const std::string path = TempPath("wal_torn.log");
  ::unlink(path.c_str());
  std::vector<size_t> sizes;  // after header, then after each append
  Record insert_record = Record::FromTokens({1, 4, 9});
  insert_record.set_text_length(5);
  {
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(path, WalSyncPolicy::kNever, nullptr);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    sizes.push_back(FileSize(path));
    ASSERT_TRUE(
        wal.value().AppendInsert(1, insert_record.view(), "a b c").ok());
    sizes.push_back(FileSize(path));
    ASSERT_TRUE(wal.value().AppendDelete(2, 17).ok());
    sizes.push_back(FileSize(path));
    ASSERT_TRUE(wal.value().AppendCompact(3).ok());
    sizes.push_back(FileSize(path));
  }
  const std::string bytes = ReadAll(path);
  ASSERT_EQ(bytes.size(), sizes.back());

  // A pristine log replays all three records with exact payloads.
  {
    std::vector<WalRecord> replay;
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(path, WalSyncPolicy::kNever, &replay);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_EQ(replay.size(), 3u);
    EXPECT_EQ(replay[0].kind, WalRecord::kInsert);
    EXPECT_EQ(replay[0].seq, 1u);
    EXPECT_EQ(replay[0].tokens, (std::vector<TokenId>{1, 4, 9}));
    EXPECT_EQ(replay[0].text, "a b c");
    EXPECT_EQ(replay[0].text_length, 5u);
    EXPECT_EQ(replay[0].norm, insert_record.view().norm());
    EXPECT_EQ(replay[1].kind, WalRecord::kDelete);
    EXPECT_EQ(replay[1].id, 17u);
    EXPECT_EQ(replay[2].kind, WalRecord::kCompact);
    EXPECT_EQ(wal.value().last_seq(), 3u);
  }

  // Truncate at EVERY byte boundary inside the last frame: the first two
  // records must survive, the torn third must be dropped and physically
  // truncated away, and the log must accept appends again.
  const size_t last_good = sizes[sizes.size() - 2];
  for (size_t cut = last_good; cut < bytes.size(); ++cut) {
    const std::string torn = TempPath("wal_torn_cut.log");
    WriteAll(torn, bytes.substr(0, cut));
    std::vector<WalRecord> replay;
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(torn, WalSyncPolicy::kNever, &replay);
    ASSERT_TRUE(wal.ok()) << "cut=" << cut << " "
                          << wal.status().ToString();
    ASSERT_EQ(replay.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(replay[1].kind, WalRecord::kDelete) << "cut=" << cut;
    EXPECT_EQ(FileSize(torn), last_good) << "cut=" << cut;
    ASSERT_TRUE(wal.value().AppendCompact(4).ok()) << "cut=" << cut;
  }

  // Torn FIRST frame: tears are handled at every depth, not just the
  // tail-most frame.
  for (size_t cut = sizes[0]; cut < sizes[1]; ++cut) {
    const std::string torn = TempPath("wal_torn_first.log");
    WriteAll(torn, bytes.substr(0, cut));
    std::vector<WalRecord> replay;
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(torn, WalSyncPolicy::kNever, &replay);
    ASSERT_TRUE(wal.ok()) << "cut=" << cut;
    EXPECT_TRUE(replay.empty()) << "cut=" << cut;
    EXPECT_EQ(FileSize(torn), sizes[0]) << "cut=" << cut;
  }
}

TEST(WalTest, CorruptMiddleFrameDropsEverythingAfterIt) {
  const std::string path = TempPath("wal_corrupt.log");
  ::unlink(path.c_str());
  std::vector<size_t> sizes;
  {
    Result<WriteAheadLog> wal =
        WriteAheadLog::Open(path, WalSyncPolicy::kNever, nullptr);
    ASSERT_TRUE(wal.ok());
    sizes.push_back(FileSize(path));
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(
          wal.value().AppendDelete(seq, static_cast<RecordId>(seq)).ok());
      sizes.push_back(FileSize(path));
    }
  }
  std::string bytes = ReadAll(path);
  // Flip one payload byte of the second frame: its CRC fails, so frames
  // two AND three are discarded (a frame behind a tear can never be
  // trusted — appends after a crash would have overwritten that space).
  bytes[sizes[1] + 2 * sizeof(uint32_t)] ^= 0x40;
  WriteAll(path, bytes);
  std::vector<WalRecord> replay;
  Result<WriteAheadLog> wal =
      WriteAheadLog::Open(path, WalSyncPolicy::kNever, &replay);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].id, 1u);
  EXPECT_EQ(FileSize(path), sizes[1]);
}

TEST(WalTest, ResetEmptiesTheLog) {
  const std::string path = TempPath("wal_reset.log");
  ::unlink(path.c_str());
  Result<WriteAheadLog> wal =
      WriteAheadLog::Open(path, WalSyncPolicy::kAlways, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value().AppendDelete(1, 5).ok());
  ASSERT_TRUE(wal.value().Reset().ok());
  ASSERT_TRUE(wal.value().AppendDelete(2, 6).ok());
  std::vector<WalRecord> replay;
  Result<WriteAheadLog> reopened =
      WriteAheadLog::Open(path, WalSyncPolicy::kAlways, &replay);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].seq, 2u);
  EXPECT_EQ(replay[0].id, 6u);
}

// ---------------------------------------------------------------------
// Double-apply guard: a crash between checkpoint rename and WAL reset
// leaves frames the checkpoint already covers; their seqs are at or
// below the checkpoint's wal_seq, so replay must skip them.

TEST(CrashRecoveryTest, StaleWalFramesAreNotDoubleApplied) {
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 30, .vocabulary = 25}, 91);
  ServiceOptions options;
  options.memtable_limit = 0;
  options.data_dir = FreshDataDir("stale_wal");
  options.wal_sync = WalSyncPolicy::kNever;
  SimilarityService service(corpus, pred, options);
  Rng rng(17);
  ZipfTable zipf(25, 0.9);
  RecordSet contents = corpus;
  for (int i = 0; i < 6; ++i) {
    auto [record, text] = MakeRandomRecord(rng, zipf);
    contents.Add(record, text);
    service.Insert(record.view(), text);
  }
  // Snapshot the WAL with the six insert frames, compact (checkpoint +
  // WAL reset), then plant the stale WAL back — the state a crash
  // between the two steps leaves behind.
  const std::string stale = ReadAll(WalFilePath(options.data_dir));
  service.Compact();
  ASSERT_TRUE(service.durability_status().ok());
  WriteAll(WalFilePath(options.data_dir), stale);

  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(pred, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Replaying the stale frames would double-insert all six records.
  ASSERT_EQ(restored.value()->size(), service.size());
  ASSERT_EQ(restored.value()->epoch(), service.epoch());
  ExpectSameService(service, *restored.value(), contents, 23, "stale-wal");
}

// ---------------------------------------------------------------------
// Checkpoint atomicity and rejection.

TEST(CrashRecoveryTest, FailedCheckpointLeavesOldOneRestorable) {
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 25, .vocabulary = 20}, 92);
  ServiceOptions options;
  options.memtable_limit = 0;
  options.data_dir = FreshDataDir("cp_atomic");
  options.wal_sync = WalSyncPolicy::kNever;
  SimilarityService service(corpus, pred, options);
  ASSERT_TRUE(service.durability_status().ok());

  // Block the checkpoint's tmp path with a directory, then force a
  // compaction: the checkpoint write fails, serving continues, the
  // durability error latches, and the OLD checkpoint (plus the WAL tail,
  // which must NOT be truncated on a failed checkpoint) still restores
  // the full state.
  const std::string blocker = CheckpointFilePath(options.data_dir) + ".tmp";
  ASSERT_EQ(::mkdir(blocker.c_str(), 0755), 0);
  Record record = Record::FromTokens({1, 2, 3});
  RecordSet contents = corpus;
  contents.Add(record, "w1 w2 w3");
  service.Insert(record.view(), "w1 w2 w3");
  service.Compact();
  ASSERT_FALSE(service.durability_status().ok());
  EXPECT_NE(service.durability_status().message().find(
                std::strerror(EISDIR)),
            std::string::npos)
      << service.durability_status().ToString();
  {
    Result<std::unique_ptr<SimilarityService>> restored =
        SimilarityService::Open(pred, options);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ExpectSameService(service, *restored.value(), contents, 29,
                      "failed-checkpoint");
  }

  // Unblock and compact with fresh work pending: the next checkpoint
  // repairs durability end to end.
  ASSERT_EQ(::rmdir(blocker.c_str()), 0);
  Record more = Record::FromTokens({2, 3, 4});
  contents.Add(more, "w2 w3 w4");
  service.Insert(more.view(), "w2 w3 w4");
  service.Compact();
  ASSERT_TRUE(service.durability_status().ok())
      << service.durability_status().ToString();
  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(pred, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameService(service, *restored.value(), contents, 37, "repaired");
}

TEST(CrashRecoveryTest, CorruptedCheckpointIsRejected) {
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 15}, 93);
  ServiceOptions options;
  options.data_dir = FreshDataDir("cp_corrupt");
  options.wal_sync = WalSyncPolicy::kNever;
  { SimilarityService service(corpus, pred, options); }

  const std::string path = CheckpointFilePath(options.data_dir);
  const std::string bytes = ReadAll(path);
  // Flip one byte at several depths: header, body, trailing CRC.
  for (size_t pos : {size_t{1}, bytes.size() / 2, bytes.size() - 2}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x20);
    WriteAll(path, corrupted);
    Result<std::unique_ptr<SimilarityService>> restored =
        SimilarityService::Open(pred, options);
    ASSERT_FALSE(restored.ok()) << "pos=" << pos;
    EXPECT_NE(restored.status().message().find("corrupt checkpoint"),
              std::string::npos)
        << restored.status().ToString();
  }
  // And a truncation sweep: every prefix must be rejected, never partially
  // restored.
  for (size_t cut = 1; cut < bytes.size(); cut += 97) {
    WriteAll(path, bytes.substr(0, bytes.size() - cut));
    EXPECT_FALSE(SimilarityService::Open(pred, options).ok()) << "cut=" << cut;
  }
  // The pristine bytes still restore — the loader rejects corruption, not
  // the format.
  WriteAll(path, bytes);
  EXPECT_TRUE(SimilarityService::Open(pred, options).ok());
}

// ---------------------------------------------------------------------
// Segment files: the incremental-checkpoint half of the segmented
// corpus. Multi-segment chains must round-trip through kill -9, orphans
// left by a crash between segment write and manifest rename must be
// garbage-collected (never loaded), and a damaged segment file must
// fail the whole restore rather than serve partial state.

TEST(SegmentFileTest, MultiSegmentChainSurvivesCrashAndReopen) {
  JaccardPredicate pred(0.5);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 134, .vocabulary = 50}, 98);
  ServiceOptions options;
  options.num_shards = 3;
  options.memtable_limit = 0;
  options.data_dir = FreshDataDir("seg_chain_crash");
  options.wal_sync = WalSyncPolicy::kNever;
  ServiceOptions twin_options = options;
  twin_options.data_dir.clear();

  auto durable = std::make_unique<SimilarityService>(Slice(corpus, 0, 90),
                                                     pred, options);
  ASSERT_TRUE(durable->durability_status().ok())
      << durable->durability_status().ToString();
  SimilarityService twin(Slice(corpus, 0, 90), pred, twin_options);

  auto crash_and_reopen = [&](const std::string& context) {
    durable.reset();
    Result<std::unique_ptr<SimilarityService>> reopened =
        SimilarityService::Open(pred, options);
    ASSERT_TRUE(reopened.ok()) << context << " "
                               << reopened.status().ToString();
    durable = std::move(reopened).value();
  };

  // Geometric descending deltas (30/10/4) deepen the chain to four
  // segments; a kill -9 after every compaction must bring the whole
  // chain back from its segment files.
  RecordId next = 90;
  for (size_t batch : {size_t{30}, size_t{10}, size_t{4}}) {
    const std::string context = "batch=" + std::to_string(batch);
    for (size_t i = 0; i < batch; ++i, ++next) {
      ASSERT_EQ(durable->Insert(corpus.record(next), corpus.text(next)), next)
          << context;
      ASSERT_EQ(twin.Insert(corpus.record(next), corpus.text(next)), next)
          << context;
    }
    durable->Compact();
    twin.Compact();
    crash_and_reopen(context);
    ASSERT_EQ(durable->stats().segments, twin.stats().segments) << context;
  }
  ASSERT_EQ(twin.stats().segments, 4u);
  ASSERT_EQ(ListSegmentFiles(options.data_dir).size(), 4u);

  // Deletes across three different segments, crashed over while still
  // tombstones (WAL-only), then folded into dead masks after reopen.
  for (RecordId victim : {RecordId{5}, RecordId{100}, RecordId{131}}) {
    ASSERT_TRUE(durable->Delete(victim));
    ASSERT_TRUE(twin.Delete(victim));
  }
  crash_and_reopen("post-delete");
  ASSERT_EQ(durable->tombstone_count(), 3u);
  durable->Compact();
  twin.Compact();
  ASSERT_EQ(durable->stats().segments, 4u);
  crash_and_reopen("post-mask-fold");
  ASSERT_EQ(durable->stats().segments, 4u);
  ExpectSameService(twin, *durable, corpus, 67, "chain-crash");
}

TEST(SegmentFileTest, OrphanSegmentFilesAreCollectedAtOpen) {
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 25, .vocabulary = 20}, 95);
  ServiceOptions options;
  options.data_dir = FreshDataDir("seg_orphan");
  options.wal_sync = WalSyncPolicy::kNever;
  { SimilarityService service(corpus, pred, options); }
  const std::set<uint64_t> referenced = ListSegmentFiles(options.data_dir);
  ASSERT_FALSE(referenced.empty());

  // Plant an orphan with an id the manifest does not reference and a
  // garbage payload: GC must unlink it by name, never parse it.
  const uint64_t orphan_id = 999;
  ASSERT_EQ(referenced.count(orphan_id), 0u);
  WriteAll(SegmentFilePath(options.data_dir, orphan_id), "not a segment");
  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(pred, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(ListSegmentFiles(options.data_dir), referenced);

  ServiceOptions twin_options = options;
  twin_options.data_dir.clear();
  SimilarityService twin(corpus, pred, twin_options);
  ExpectSameService(twin, *restored.value(), corpus, 43, "orphan-gc");
}

TEST(SegmentFileTest, SegmentsWrittenBeforeManifestRenameAreOrphansOnReopen) {
  JaccardPredicate pred(0.5);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 40, .vocabulary = 30}, 97);
  ServiceOptions options;
  options.memtable_limit = 0;
  options.data_dir = FreshDataDir("seg_rename_crash");
  options.wal_sync = WalSyncPolicy::kNever;
  ServiceOptions twin_options = options;
  twin_options.data_dir.clear();

  SimilarityService service(corpus, pred, options);
  SimilarityService twin(corpus, pred, twin_options);
  Rng rng(53);
  ZipfTable zipf(30, 0.9);
  RecordSet contents = corpus;
  for (int i = 0; i < 5; ++i) {
    auto [record, text] = MakeRandomRecord(rng, zipf);
    contents.Add(record, text);
    service.Insert(record.view(), text);
    twin.Insert(record.view(), text);
  }
  service.Compact();
  twin.Compact();
  ASSERT_TRUE(service.durability_status().ok())
      << service.durability_status().ToString();

  // Snapshot checkpoint A in full: manifest, WAL and segment files.
  std::map<std::string, std::string> state_a;
  state_a[CheckpointFilePath(options.data_dir)] =
      ReadAll(CheckpointFilePath(options.data_dir));
  const std::set<uint64_t> files_a = ListSegmentFiles(options.data_dir);
  for (uint64_t id : files_a) {
    const std::string path = SegmentFilePath(options.data_dir, id);
    state_a[path] = ReadAll(path);
  }

  // Six more inserts, WAL snapshot, then checkpoint B (which writes new
  // segment files, renames the manifest, GCs merged-away files of A and
  // resets the WAL).
  for (int i = 0; i < 6; ++i) {
    auto [record, text] = MakeRandomRecord(rng, zipf);
    contents.Add(record, text);
    service.Insert(record.view(), text);
    twin.Insert(record.view(), text);
  }
  const std::string wal_b = ReadAll(WalFilePath(options.data_dir));
  service.Compact();
  ASSERT_TRUE(service.durability_status().ok())
      << service.durability_status().ToString();
  ASSERT_NE(ListSegmentFiles(options.data_dir), files_a);

  // Reconstruct the exact on-disk state of a crash between B's segment
  // writes and B's manifest rename: A's manifest and segment files
  // intact, the WAL still holding the six insert frames, and B's fresh
  // segment files sitting unreferenced.
  for (const auto& [path, bytes] : state_a) WriteAll(path, bytes);
  WriteAll(WalFilePath(options.data_dir), wal_b);

  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(pred, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // B's segments were GCed; exactly A's files remain.
  EXPECT_EQ(ListSegmentFiles(options.data_dir), files_a);
  // Checkpoint A + WAL replay of the six inserts = the twin's state
  // (those inserts sit in the memtable on both sides).
  EXPECT_EQ(restored.value()->memtable_size(), 6u);
  ExpectSameService(twin, *restored.value(), contents, 61, "rename-crash");
}

TEST(SegmentFileTest, CorruptSegmentFileIsRejected) {
  ScopedMaterialized materialized;
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 15}, 96);
  ServiceOptions options;
  options.data_dir = FreshDataDir("seg_corrupt");
  options.wal_sync = WalSyncPolicy::kNever;
  { SimilarityService service(corpus, pred, options); }
  const std::set<uint64_t> files = ListSegmentFiles(options.data_dir);
  ASSERT_FALSE(files.empty());
  const std::string path = SegmentFilePath(options.data_dir, *files.begin());
  const std::string bytes = ReadAll(path);

  // One flipped byte at several depths: magic, body, trailing CRC.
  for (size_t pos : {size_t{1}, bytes.size() / 2, bytes.size() - 2}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x20);
    WriteAll(path, corrupted);
    Result<std::unique_ptr<SimilarityService>> restored =
        SimilarityService::Open(pred, options);
    ASSERT_FALSE(restored.ok()) << "pos=" << pos;
    EXPECT_NE(restored.status().message().find("corrupt checkpoint"),
              std::string::npos)
        << restored.status().ToString();
  }
  // Truncations and outright absence fail too.
  for (size_t cut = 1; cut < bytes.size(); cut += 131) {
    WriteAll(path, bytes.substr(0, bytes.size() - cut));
    EXPECT_FALSE(SimilarityService::Open(pred, options).ok()) << "cut=" << cut;
  }
  ::unlink(path.c_str());
  EXPECT_FALSE(SimilarityService::Open(pred, options).ok());
  // The pristine bytes still restore.
  WriteAll(path, bytes);
  EXPECT_TRUE(SimilarityService::Open(pred, options).ok());
}

// Writes `bytes` back with a freshly computed trailing CRC, so tests can
// tamper with specific fields and still reach the checks BEHIND the
// whole-file checksum.
std::string ResealSegment(std::string bytes) {
  const uint32_t crc =
      Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  return bytes;
}

TEST(SegmentFileTest, OldVersionSegmentIsRejectedWithClearError) {
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 15}, 99);
  ServiceOptions options;
  options.data_dir = FreshDataDir("seg_old_version");
  options.wal_sync = WalSyncPolicy::kNever;
  { SimilarityService service(corpus, pred, options); }
  const std::set<uint64_t> files = ListSegmentFiles(options.data_dir);
  ASSERT_FALSE(files.empty());
  const std::string path = SegmentFilePath(options.data_dir, *files.begin());
  const std::string bytes = ReadAll(path);

  // Rewind the version field (fixed32 right after the 4-byte magic) to
  // each superseded layout — v1 (pre-bitmap) and v2 (varint-packed, the
  // pre-out-of-core layout) — and reseal the CRC: the file is
  // structurally intact, so the rejection must come from the version
  // gate with an error an operator can act on — not a generic
  // corruption message. Both the materialized loader and the mapped
  // opener take the same ParseSegmentHeader gate, so check both paths.
  for (const uint32_t version : {uint32_t{1}, uint32_t{2}}) {
    std::string old_version = bytes;
    std::memcpy(old_version.data() + 4, &version, sizeof(version));
    WriteAll(path, ResealSegment(std::move(old_version)));
    for (const bool mapped : {false, true}) {
      std::unique_ptr<ScopedMaterialized> pin_materialized;
      std::unique_ptr<ScopedMapped> pin_mapped;
      if (mapped) {
        pin_mapped = std::make_unique<ScopedMapped>(1);
      } else {
        pin_materialized = std::make_unique<ScopedMaterialized>();
      }
      Result<std::unique_ptr<SimilarityService>> restored =
          SimilarityService::Open(pred, options);
      ASSERT_FALSE(restored.ok()) << "version=" << version
                                  << " mapped=" << mapped;
      EXPECT_NE(
          restored.status().message().find("unsupported segment version"),
          std::string::npos)
          << restored.status().ToString();
    }
  }

  // The pristine (current-version) bytes still restore.
  WriteAll(path, bytes);
  EXPECT_TRUE(SimilarityService::Open(pred, options).ok());
}

TEST(SegmentFileTest, TruncatedSegmentMapFailsAsStatus) {
  // A segment file cut short must surface as a clean Status from the
  // MAPPED opener — never a SIGBUS from dereferencing a mapping past
  // EOF. The header records the file size, so every truncation (even
  // mid-header) is caught before any section pointer is formed.
  ScopedMapped mapped(1);
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 15}, 103);
  ServiceOptions options;
  options.data_dir = FreshDataDir("seg_truncated_map");
  options.wal_sync = WalSyncPolicy::kNever;
  { SimilarityService service(corpus, pred, options); }
  const std::set<uint64_t> files = ListSegmentFiles(options.data_dir);
  ASSERT_FALSE(files.empty());
  const std::string path = SegmentFilePath(options.data_dir, *files.begin());
  const std::string bytes = ReadAll(path);

  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, bytes.size() / 8,
                      size_t{70}, size_t{12}, size_t{3}, size_t{0}}) {
    WriteAll(path, bytes.substr(0, keep));
    Result<std::unique_ptr<SimilarityService>> restored =
        SimilarityService::Open(pred, options);
    ASSERT_FALSE(restored.ok()) << "keep=" << keep;
    EXPECT_NE(restored.status().message().find("corrupt checkpoint"),
              std::string::npos)
        << "keep=" << keep << ": " << restored.status().ToString();
  }

  WriteAll(path, bytes);
  EXPECT_TRUE(SimilarityService::Open(pred, options).ok());
}

TEST(SegmentFileTest, TamperedBitmapBlockIsRejected) {
  ScopedMaterialized materialized;
  OverlapPredicate pred(3);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 15}, 101);
  ServiceOptions options;
  options.data_dir = FreshDataDir("seg_bitmap_tamper");
  options.wal_sync = WalSyncPolicy::kNever;
  { SimilarityService service(corpus, pred, options); }
  const std::set<uint64_t> files = ListSegmentFiles(options.data_dir);
  ASSERT_FALSE(files.empty());
  const std::string path = SegmentFilePath(options.data_dir, *files.begin());
  const std::string bytes = ReadAll(path);

  // The bitmap block is the last thing before the trailing CRC. Flip one
  // bit there and reseal: the CRC passes, so the loader's stored-vs-
  // rebuilt bitmap comparison is what must catch the damage.
  std::string tampered = bytes;
  tampered[tampered.size() - sizeof(uint32_t) - 1] ^= 0x01;
  WriteAll(path, ResealSegment(std::move(tampered)));
  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(pred, options);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("segment bitmap"),
            std::string::npos)
      << restored.status().ToString();

  WriteAll(path, bytes);
  EXPECT_TRUE(SimilarityService::Open(pred, options).ok());
}

TEST(SegmentFileTest, RestoredBitmapsGateWithoutChangingAnswers) {
  // A service reopened from checkpointed (v2) segments prunes through the
  // restored bitmaps; its answers must be byte-identical to a memory-only
  // twin with the filter disabled — the end-to-end proof that bitmaps
  // survive the segment round trip intact.
  JaccardPredicate pred(0.5);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 40}, 103);
  ServiceOptions options;
  options.memtable_limit = 0;
  options.num_shards = 3;
  options.bitmap_bits = kTokenBitmapBits;
  options.data_dir = FreshDataDir("seg_bitmap_roundtrip");
  options.wal_sync = WalSyncPolicy::kNever;
  {
    SimilarityService service(corpus, pred, options);
    ASSERT_TRUE(service.durability_status().ok())
        << service.durability_status().ToString();
  }
  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(pred, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ServiceOptions ungated_options = options;
  ungated_options.data_dir.clear();
  ungated_options.bitmap_bits = 0;
  SimilarityService ungated(corpus, pred, ungated_options);

  for (RecordId r = 0; r < corpus.size(); ++r) {
    const std::string tag = "record " + std::to_string(r);
    ExpectSameMatches(ungated.Query(corpus.record(r), corpus.text(r)),
                      restored.value()->Query(corpus.record(r), corpus.text(r)),
                      tag + " query");
    ExpectSameMatches(
        ungated.QueryTopK(corpus.record(r), 5, corpus.text(r)),
        restored.value()->QueryTopK(corpus.record(r), 5, corpus.text(r)),
        tag + " topk");
  }
  // The restored service really did prune through the loaded bitmaps.
  EXPECT_GT(restored.value()->stats().merge.bitmap_pruned, 0u);
  EXPECT_EQ(ungated.stats().merge.bitmap_pruned, 0u);
}

TEST(CrashRecoveryTest, PredicateMismatchIsRejected) {
  JaccardPredicate jaccard(0.5);
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 15, .vocabulary = 12}, 94);
  ServiceOptions options;
  options.data_dir = FreshDataDir("cp_pred_mismatch");
  options.wal_sync = WalSyncPolicy::kNever;
  { SimilarityService service(corpus, jaccard, options); }

  OverlapPredicate overlap(3);
  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(overlap, options);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(restored.status().message().find("jaccard"), std::string::npos)
      << restored.status().ToString();

  Result<std::unique_ptr<SimilarityService>> correct =
      SimilarityService::Open(jaccard, options);
  EXPECT_TRUE(correct.ok()) << correct.status().ToString();
}

TEST(CrashRecoveryTest, OpenWithoutDataDirOrCheckpointFails) {
  OverlapPredicate pred(3);
  EXPECT_FALSE(SimilarityService::Open(pred, ServiceOptions{}).ok());
  ServiceOptions options;
  options.data_dir = FreshDataDir("cp_missing");
  Result<std::unique_ptr<SimilarityService>> restored =
      SimilarityService::Open(pred, options);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace ssjoin
