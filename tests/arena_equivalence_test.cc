// Arena-layout equivalence suite: every join algorithm, across predicates
// and thread counts, must produce byte-identical output to the seed-era
// implementation (golden FNV-1a hashes captured from the pre-arena build).
// This pins the columnar CSR refactor to the exact pre-refactor behavior:
// any change in pair content *or order-sensitive dedup behavior* shifts
// the hash.
//
// Regenerating goldens (only legitimate after an intentional semantic
// change): run with SSJOIN_PRINT_GOLDENS=1 and paste the printed table.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_coefficient_predicate.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

using testing_util::MakeRandomRecordSet;
using testing_util::RandomSetOptions;

using PairVector = std::vector<std::pair<RecordId, RecordId>>;

uint64_t HashPairs(const PairVector& pairs) {
  // FNV-1a over the sorted (a, b) stream: stable across platforms.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [a, b] : pairs) {
    mix(a);
    mix(b);
  }
  return h;
}

struct GoldenCase {
  const char* label;
  uint64_t hash;
};

// Captured from the seed-era (pre-arena) build; see file comment.
const GoldenCase kGoldens[] = {
    {"dense/overlap/brute", 10388405375568447476ull},
    {"dense/overlap/probe", 10388405375568447476ull},
    {"dense/overlap/probe/t4", 10388405375568447476ull},
    {"dense/overlap/probe-optmerge", 10388405375568447476ull},
    {"dense/overlap/probe-optmerge/t4", 10388405375568447476ull},
    {"dense/overlap/probe-online", 10388405375568447476ull},
    {"dense/overlap/probe-sort", 10388405375568447476ull},
    {"dense/overlap/probe-cluster", 10388405375568447476ull},
    {"dense/overlap/pair-count", 10388405375568447476ull},
    {"dense/overlap/pair-count-optmerge", 10388405375568447476ull},
    {"dense/overlap/cluster-mem", 10388405375568447476ull},
    {"dense/overlap/probe-stopwords", 10388405375568447476ull},
    {"dense/overlap/probe-stopwords/t4", 10388405375568447476ull},
    {"dense/overlap/word-groups", 10388405375568447476ull},
    {"dense/overlap/word-groups-optmerge", 10388405375568447476ull},
    {"dense/overlap/prefix-filter", 10388405375568447476ull},
    {"dense/overlap/prefix-filter/t4", 10388405375568447476ull},
    {"dense/jaccard/brute", 15267942115989793231ull},
    {"dense/jaccard/probe", 15267942115989793231ull},
    {"dense/jaccard/probe/t4", 15267942115989793231ull},
    {"dense/jaccard/probe-optmerge", 15267942115989793231ull},
    {"dense/jaccard/probe-optmerge/t4", 15267942115989793231ull},
    {"dense/jaccard/probe-online", 15267942115989793231ull},
    {"dense/jaccard/probe-sort", 15267942115989793231ull},
    {"dense/jaccard/probe-cluster", 15267942115989793231ull},
    {"dense/jaccard/pair-count", 15267942115989793231ull},
    {"dense/jaccard/pair-count-optmerge", 15267942115989793231ull},
    {"dense/jaccard/cluster-mem", 15267942115989793231ull},
    {"dense/jaccard/prefix-filter", 15267942115989793231ull},
    {"dense/jaccard/prefix-filter/t4", 15267942115989793231ull},
    {"dense/cosine/brute", 14618095315970372102ull},
    {"dense/cosine/probe", 14618095315970372102ull},
    {"dense/cosine/probe/t4", 14618095315970372102ull},
    {"dense/cosine/probe-optmerge", 14618095315970372102ull},
    {"dense/cosine/probe-optmerge/t4", 14618095315970372102ull},
    {"dense/cosine/probe-online", 14618095315970372102ull},
    {"dense/cosine/probe-sort", 14618095315970372102ull},
    {"dense/cosine/probe-cluster", 14618095315970372102ull},
    {"dense/cosine/pair-count", 14618095315970372102ull},
    {"dense/cosine/pair-count-optmerge", 14618095315970372102ull},
    {"dense/cosine/cluster-mem", 14618095315970372102ull},
    {"dense/cosine/probe-stopwords", 14618095315970372102ull},
    {"dense/cosine/probe-stopwords/t4", 14618095315970372102ull},
    {"dense/cosine/prefix-filter", 14618095315970372102ull},
    {"dense/cosine/prefix-filter/t4", 14618095315970372102ull},
    {"skewed/overlap/brute", 16066056405829026878ull},
    {"skewed/overlap/probe", 16066056405829026878ull},
    {"skewed/overlap/probe/t4", 16066056405829026878ull},
    {"skewed/overlap/probe-optmerge", 16066056405829026878ull},
    {"skewed/overlap/probe-optmerge/t4", 16066056405829026878ull},
    {"skewed/overlap/probe-online", 16066056405829026878ull},
    {"skewed/overlap/probe-sort", 16066056405829026878ull},
    {"skewed/overlap/probe-cluster", 16066056405829026878ull},
    {"skewed/overlap/pair-count", 16066056405829026878ull},
    {"skewed/overlap/pair-count-optmerge", 16066056405829026878ull},
    {"skewed/overlap/cluster-mem", 16066056405829026878ull},
    {"skewed/overlap/probe-stopwords", 16066056405829026878ull},
    {"skewed/overlap/probe-stopwords/t4", 16066056405829026878ull},
    {"skewed/overlap/word-groups", 16066056405829026878ull},
    {"skewed/overlap/word-groups-optmerge", 16066056405829026878ull},
    {"skewed/overlap/prefix-filter", 16066056405829026878ull},
    {"skewed/overlap/prefix-filter/t4", 16066056405829026878ull},
    {"skewed/dice/brute", 15189134890236523082ull},
    {"skewed/dice/probe", 15189134890236523082ull},
    {"skewed/dice/probe/t4", 15189134890236523082ull},
    {"skewed/dice/probe-optmerge", 15189134890236523082ull},
    {"skewed/dice/probe-optmerge/t4", 15189134890236523082ull},
    {"skewed/dice/probe-online", 15189134890236523082ull},
    {"skewed/dice/probe-sort", 15189134890236523082ull},
    {"skewed/dice/probe-cluster", 15189134890236523082ull},
    {"skewed/dice/pair-count", 15189134890236523082ull},
    {"skewed/dice/pair-count-optmerge", 15189134890236523082ull},
    {"skewed/dice/cluster-mem", 15189134890236523082ull},
    {"skewed/dice/prefix-filter", 15189134890236523082ull},
    {"skewed/dice/prefix-filter/t4", 15189134890236523082ull},
    {"skewed/overlap-coefficient/brute", 14277149952392889830ull},
    {"skewed/overlap-coefficient/probe", 14277149952392889830ull},
    {"skewed/overlap-coefficient/probe/t4", 14277149952392889830ull},
    {"skewed/overlap-coefficient/probe-optmerge", 14277149952392889830ull},
    {"skewed/overlap-coefficient/probe-optmerge/t4", 14277149952392889830ull},
    {"skewed/overlap-coefficient/probe-online", 14277149952392889830ull},
    {"skewed/overlap-coefficient/probe-sort", 14277149952392889830ull},
    {"skewed/overlap-coefficient/probe-cluster", 14277149952392889830ull},
    {"skewed/overlap-coefficient/pair-count", 14277149952392889830ull},
    {"skewed/overlap-coefficient/pair-count-optmerge", 14277149952392889830ull},
    {"skewed/overlap-coefficient/cluster-mem", 14277149952392889830ull},
    {"skewed/hamming/brute", 17022430018312793733ull},
    {"skewed/hamming/probe", 17022430018312793733ull},
    {"skewed/hamming/probe/t4", 17022430018312793733ull},
    {"skewed/hamming/probe-optmerge", 17022430018312793733ull},
    {"skewed/hamming/probe-optmerge/t4", 17022430018312793733ull},
    {"skewed/hamming/probe-online", 17022430018312793733ull},
    {"skewed/hamming/probe-sort", 17022430018312793733ull},
    {"skewed/hamming/probe-cluster", 17022430018312793733ull},
    {"skewed/hamming/pair-count", 17022430018312793733ull},
    {"skewed/hamming/pair-count-optmerge", 17022430018312793733ull},
    {"skewed/hamming/cluster-mem", 17022430018312793733ull},
    {"skewed/hamming/prefix-filter", 17022430018312793733ull},
    {"skewed/hamming/prefix-filter/t4", 17022430018312793733ull},
    {"qgram/edit-distance/brute", 2522082964145004146ull},
    {"qgram/edit-distance/probe", 2522082964145004146ull},
    {"qgram/edit-distance/probe/t4", 2522082964145004146ull},
    {"qgram/edit-distance/probe-optmerge", 2522082964145004146ull},
    {"qgram/edit-distance/probe-optmerge/t4", 2522082964145004146ull},
    {"qgram/edit-distance/probe-online", 2522082964145004146ull},
    {"qgram/edit-distance/probe-sort", 2522082964145004146ull},
    {"qgram/edit-distance/probe-cluster", 2522082964145004146ull},
    {"qgram/edit-distance/pair-count", 2522082964145004146ull},
    {"qgram/edit-distance/pair-count-optmerge", 2522082964145004146ull},
    {"qgram/edit-distance/cluster-mem", 2522082964145004146ull},
};

bool PrintGoldens() {
  const char* env = std::getenv("SSJOIN_PRINT_GOLDENS");
  return env != nullptr && env[0] == '1';
}

class GoldenRecorder {
 public:
  void Check(const std::string& label, const PairVector& pairs) {
    uint64_t h = HashPairs(pairs);
    if (PrintGoldens()) {
      std::printf("    {\"%s\", %lluull},\n", label.c_str(),
                  static_cast<unsigned long long>(h));
      return;
    }
    bool found = false;
    for (const GoldenCase& g : kGoldens) {
      if (label == g.label) {
        found = true;
        EXPECT_EQ(h, g.hash)
            << label << ": output diverged from the seed-era golden ("
            << pairs.size() << " pairs)";
        break;
      }
    }
    EXPECT_TRUE(found) << "no golden recorded for case: " << label;
  }
};

JoinOptions BaseOptions() {
  JoinOptions options;
  options.cluster_mem.memory_budget_postings = 300;
  options.cluster_mem.temp_dir = ::testing::TempDir();
  return options;
}

struct AlgorithmSpec {
  JoinAlgorithm algorithm;
  const char* name;
  bool threaded;  // also run with num_threads = 4
};

const AlgorithmSpec kAlgorithms[] = {
    {JoinAlgorithm::kBruteForce, "brute", false},
    {JoinAlgorithm::kProbeCount, "probe", true},
    {JoinAlgorithm::kProbeOptMerge, "probe-optmerge", true},
    {JoinAlgorithm::kProbeOnline, "probe-online", false},
    {JoinAlgorithm::kProbeSort, "probe-sort", false},
    {JoinAlgorithm::kProbeCluster, "probe-cluster", false},
    {JoinAlgorithm::kPairCount, "pair-count", false},
    {JoinAlgorithm::kPairCountOptMerge, "pair-count-optmerge", false},
    {JoinAlgorithm::kClusterMem, "cluster-mem", false},
};

void RunSuite(GoldenRecorder* recorder, const std::string& corpus_label,
              const RecordSet& base, const Predicate& pred,
              bool prefix_filter) {
  auto run_one = [&](const AlgorithmSpec& spec) {
    for (int threads : {1, 4}) {
      if (threads > 1 && !spec.threaded) continue;
      JoinOptions options = BaseOptions();
      options.num_threads = threads;
      RecordSet working = base;
      Result<PairVector> actual =
          JoinToPairs(&working, pred, spec.algorithm, options);
      ASSERT_TRUE(actual.ok()) << spec.name << ": "
                               << actual.status().ToString();
      std::string label = corpus_label + "/" + pred.name() + "/" + spec.name;
      if (threads > 1) label += "/t4";
      recorder->Check(label, actual.value());
    }
  };
  for (const AlgorithmSpec& spec : kAlgorithms) run_one(spec);
  // Probe-stopWords needs a constant threshold; Word-Groups additionally
  // needs static token weights (only overlap qualifies).
  if (pred.ConstantThreshold().has_value()) {
    run_one({JoinAlgorithm::kProbeStopwords, "probe-stopwords", true});
    if (pred.has_static_weights()) {
      run_one({JoinAlgorithm::kWordGroups, "word-groups", false});
      run_one({JoinAlgorithm::kWordGroupsOptMerge, "word-groups-optmerge",
               false});
    }
  }
  if (prefix_filter) {
    run_one({JoinAlgorithm::kPrefixFilter, "prefix-filter", true});
  }
}

TEST(ArenaEquivalence, GoldenOutputsAcrossAlgorithms) {
  GoldenRecorder recorder;

  RandomSetOptions dense;
  dense.num_records = 150;
  dense.vocabulary = 60;
  RecordSet dense_set = MakeRandomRecordSet(dense, 4711);

  RandomSetOptions skewed;
  skewed.num_records = 160;
  skewed.vocabulary = 200;
  skewed.zipf_exponent = 1.4;
  skewed.duplicate_fraction = 0.5;
  RecordSet skewed_set = MakeRandomRecordSet(skewed, 4712);

  RunSuite(&recorder, "dense", dense_set, OverlapPredicate(3.0),
           /*prefix_filter=*/true);
  RunSuite(&recorder, "dense", dense_set, JaccardPredicate(0.5),
           /*prefix_filter=*/true);
  RunSuite(&recorder, "dense", dense_set, CosinePredicate(0.5),
           /*prefix_filter=*/true);
  RunSuite(&recorder, "skewed", skewed_set, OverlapPredicate(4.0),
           /*prefix_filter=*/true);
  RunSuite(&recorder, "skewed", skewed_set, DicePredicate(0.6),
           /*prefix_filter=*/true);
  RunSuite(&recorder, "skewed", skewed_set,
           OverlapCoefficientPredicate(0.7),
           /*prefix_filter=*/false);
  RunSuite(&recorder, "skewed", skewed_set, HammingPredicate(4.0),
           /*prefix_filter=*/true);
}

TEST(ArenaEquivalence, GoldenOutputsEditDistance) {
  GoldenRecorder recorder;
  Rng rng(515);
  std::vector<std::string> texts;
  for (int i = 0; i < 110; ++i) {
    if (!texts.empty() && rng.Bernoulli(0.5)) {
      std::string base = texts[rng.UniformU32(texts.size())];
      int edits = rng.UniformInt(0, 3);
      for (int e = 0; e < edits && !base.empty(); ++e) {
        uint32_t pos = rng.UniformU32(static_cast<uint32_t>(base.size()));
        base[pos] = static_cast<char>('a' + rng.UniformU32(26));
      }
      texts.push_back(base);
    } else {
      texts.push_back(testing_util::RandomAsciiString(rng, 1, 22));
    }
  }
  TokenDictionary dict;
  CorpusBuilderOptions copts;
  copts.normalize = false;
  RecordSet base = BuildQGramCorpus(texts, /*q=*/3, &dict, copts);
  RunSuite(&recorder, "qgram", base, EditDistancePredicate(2, 3),
           /*prefix_filter=*/false);
}

}  // namespace
}  // namespace ssjoin
