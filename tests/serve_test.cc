#include "serve/similarity_service.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "text/token_dictionary.h"

namespace ssjoin {
namespace {

ServiceOptions MakeOptions(size_t memtable_limit, int num_threads = 0) {
  ServiceOptions options;
  options.memtable_limit = memtable_limit;
  options.num_threads = num_threads;
  return options;
}

/// Per-record partner sets of a fresh batch self-join over `corpus`
/// (prepared copy; the input stays raw, exactly like the service's own
/// corpus handling).
std::map<RecordId, std::set<RecordId>> JoinPartners(const RecordSet& corpus,
                                                    const Predicate& pred) {
  RecordSet prepared = corpus;
  Result<std::vector<std::pair<RecordId, RecordId>>> pairs =
      JoinToPairs(&prepared, pred, JoinAlgorithm::kProbeOptMerge);
  EXPECT_TRUE(pairs.ok()) << pairs.status().ToString();
  std::map<RecordId, std::set<RecordId>> partners;
  for (const auto& [a, b] : pairs.value()) {
    partners[a].insert(b);
    partners[b].insert(a);
  }
  return partners;
}

/// Queries the service with every corpus record and checks the answers
/// against the join partner sets (ignoring the self match, which a pair
/// join never emits).
void ExpectQueriesMatchJoin(const SimilarityService& service,
                            const RecordSet& corpus, const Predicate& pred) {
  std::map<RecordId, std::set<RecordId>> partners =
      JoinPartners(corpus, pred);
  for (RecordId r = 0; r < corpus.size(); ++r) {
    std::set<RecordId> answered;
    for (const QueryMatch& m :
         service.Query(corpus.record(r), corpus.text(r))) {
      if (m.id != r) answered.insert(m.id);
    }
    EXPECT_EQ(answered, partners[r]) << "record " << r;
  }
}

RecordSet Slice(const RecordSet& corpus, RecordId begin, RecordId end) {
  RecordSet out;
  for (RecordId id = begin; id < end; ++id) {
    out.Add(corpus.record(id), corpus.text(id));
  }
  return out;
}

/// Queries the service with every SURVIVING record and checks the
/// answers against a fresh batch self-join over the survivors only —
/// the acceptance bar for deletes: a tombstoned (or compacted-away)
/// record must influence nothing, not even corpus statistics. The
/// survivor join speaks dense local ids, so expectations are mapped
/// back through the survivors' global ids.
void ExpectQueriesMatchSurvivorJoin(const SimilarityService& service,
                                    const RecordSet& corpus,
                                    const std::vector<bool>& deleted,
                                    const Predicate& pred) {
  RecordSet survivors;
  std::vector<RecordId> gids;
  for (RecordId id = 0; id < corpus.size(); ++id) {
    if (!deleted[id]) {
      survivors.Add(corpus.record(id), corpus.text(id));
      gids.push_back(id);
    }
  }
  std::map<RecordId, std::set<RecordId>> partners =
      JoinPartners(survivors, pred);
  for (RecordId local = 0; local < survivors.size(); ++local) {
    std::set<RecordId> expected;
    for (RecordId p : partners[local]) expected.insert(gids[p]);
    std::set<RecordId> answered;
    for (const QueryMatch& m :
         service.Query(survivors.record(local), survivors.text(local))) {
      EXPECT_FALSE(deleted[m.id]) << "deleted id " << m.id << " answered";
      if (m.id != gids[local]) answered.insert(m.id);
    }
    EXPECT_EQ(answered, expected) << "record " << gids[local];
  }
}

TEST(SimilarityServiceTest, MatchesBatchJoinOverlap) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 80}, 11);
  OverlapPredicate pred(3);
  SimilarityService service(corpus, pred);
  ExpectQueriesMatchJoin(service, corpus, pred);
}

TEST(SimilarityServiceTest, MatchesBatchJoinJaccard) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 80}, 12);
  JaccardPredicate pred(0.5);
  SimilarityService service(corpus, pred);
  ExpectQueriesMatchJoin(service, corpus, pred);
}

TEST(SimilarityServiceTest, MatchesBatchJoinCosine) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 80}, 13);
  CosinePredicate pred(0.6);
  SimilarityService service(corpus, pred);
  ExpectQueriesMatchJoin(service, corpus, pred);
}

// The before-and-after-growth acceptance check: construct the service on
// a prefix of the corpus, Insert() the rest, Compact(), and require
// query answers identical to a fresh batch join over the full corpus.
// For the corpus-independent predicates the equivalence must also hold
// BEFORE compaction, straight off the memtable.
TEST(SimilarityServiceTest, InsertThenCompactMatchesBatchJoinAllPredicates) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 160, .vocabulary = 80}, 14);
  const RecordId split = 110;
  OverlapPredicate overlap(3);
  JaccardPredicate jaccard(0.5);
  CosinePredicate cosine(0.6);
  struct Case {
    const Predicate* pred;
    bool exact_before_compaction;
  };
  const Case cases[] = {
      {&overlap, true}, {&jaccard, true}, {&cosine, false}};
  for (const Case& c : cases) {
    SimilarityService service(Slice(corpus, 0, split), *c.pred);
    for (RecordId id = split; id < corpus.size(); ++id) {
      EXPECT_EQ(service.Insert(corpus.record(id)), id);
    }
    EXPECT_EQ(service.size(), corpus.size());
    EXPECT_GT(service.memtable_size(), 0u);
    if (c.exact_before_compaction) {
      // Per-record scores do not depend on corpus statistics, so the
      // two-tier answer is already exact with a populated memtable.
      ExpectQueriesMatchJoin(service, corpus, *c.pred);
    }
    service.Compact();
    EXPECT_EQ(service.memtable_size(), 0u);
    // After compaction the base holds the full corpus with Prepare()
    // re-run from scratch, so even TF-IDF cosine is exact.
    ExpectQueriesMatchJoin(service, corpus, *c.pred);
  }
}

TEST(SimilarityServiceTest, InsertIsVisibleImmediately) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 40, .vocabulary = 30}, 15);
  JaccardPredicate pred(0.8);
  SimilarityService service(Slice(corpus, 0, 39), pred);
  const RecordView newcomer = corpus.record(39);
  RecordId id = service.Insert(newcomer);
  EXPECT_EQ(id, 39u);
  // An exact duplicate always passes Jaccard: the new record must be in
  // its own answer set without any compaction.
  std::vector<QueryMatch> matches = service.Query(newcomer);
  EXPECT_TRUE(std::any_of(
      matches.begin(), matches.end(),
      [id](const QueryMatch& m) { return m.id == id; }));
}

TEST(SimilarityServiceTest, CompactionPreservesAnswersAndBumpsEpoch) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 60}, 16);
  OverlapPredicate pred(3);
  SimilarityService service(Slice(corpus, 0, 100), pred,
                            MakeOptions(0));
  for (RecordId id = 100; id < corpus.size(); ++id) {
    service.Insert(corpus.record(id));
  }
  std::vector<std::vector<QueryMatch>> before;
  for (RecordId r = 0; r < corpus.size(); ++r) {
    before.push_back(service.Query(corpus.record(r)));
  }
  uint64_t epoch_before = service.epoch();
  service.Compact();
  EXPECT_GT(service.epoch(), epoch_before);
  EXPECT_EQ(service.memtable_size(), 0u);
  EXPECT_EQ(service.size(), corpus.size());
  for (RecordId r = 0; r < corpus.size(); ++r) {
    std::vector<QueryMatch> after = service.Query(corpus.record(r));
    ASSERT_EQ(after.size(), before[r].size()) << "record " << r;
    for (size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after[i].id, before[r][i].id);
      EXPECT_DOUBLE_EQ(after[i].score, before[r][i].score);
    }
  }
}

TEST(SimilarityServiceTest, MemtableLimitTriggersAutoCompaction) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 30}, 17);
  OverlapPredicate pred(2);
  SimilarityService service(Slice(corpus, 0, 10), pred,
                            MakeOptions(4));
  for (RecordId id = 10; id < 18; ++id) service.Insert(corpus.record(id));
  // 8 inserts with limit 4: two automatic compactions, memtable drained.
  EXPECT_EQ(service.memtable_size(), 0u);
  EXPECT_EQ(service.stats().compactions, 2u);
  EXPECT_EQ(service.size(), 18u);
}

TEST(SimilarityServiceTest, BatchQueryEqualsPointQueries) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 130, .vocabulary = 70}, 18);
  JaccardPredicate pred(0.5);
  SimilarityService service(corpus, pred, MakeOptions(256, 4));
  RecordSet queries = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 70}, 19);
  std::vector<std::vector<QueryMatch>> batched = service.BatchQuery(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (RecordId q = 0; q < queries.size(); ++q) {
    std::vector<QueryMatch> point = service.Query(queries.record(q));
    ASSERT_EQ(batched[q].size(), point.size()) << "query " << q;
    for (size_t i = 0; i < point.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, point[i].id);
      EXPECT_DOUBLE_EQ(batched[q][i].score, point[i].score);
    }
  }
}

TEST(SimilarityServiceTest, TopKRanksByScoreAndTruncates) {
  // Hand-built corpus with a known overlap ranking against {0, 1, 2}:
  // r0 and r2 share 3 tokens (tie, id order), r1 shares 2, r4 shares 1,
  // r3 shares none and must never appear.
  RecordSet corpus;
  corpus.Add(Record::FromTokens({0, 1, 2}));
  corpus.Add(Record::FromTokens({0, 1}));
  corpus.Add(Record::FromTokens({0, 1, 2, 3}));
  corpus.Add(Record::FromTokens({7, 8}));
  corpus.Add(Record::FromTokens({0, 9}));
  OverlapPredicate pred(2);  // the threshold is irrelevant to top-k
  SimilarityService service(corpus, pred);

  const RecordView query = corpus.record(0);
  std::vector<QueryMatch> top = service.QueryTopK(query, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_DOUBLE_EQ(top[0].score, 3.0);
  EXPECT_EQ(top[1].id, 2u);
  EXPECT_DOUBLE_EQ(top[1].score, 3.0);
  EXPECT_EQ(top[2].id, 1u);
  EXPECT_DOUBLE_EQ(top[2].score, 2.0);

  // k beyond the candidate pool: everything sharing a token, nothing else.
  std::vector<QueryMatch> all = service.QueryTopK(query, 10);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[3].id, 4u);
  EXPECT_DOUBLE_EQ(all[3].score, 1.0);

  // Top-k sees the memtable too: a new duplicate of the query ties the
  // leaders and slots by id.
  service.Insert(Record::FromTokens({0, 1, 2}));
  std::vector<QueryMatch> grown = service.QueryTopK(query, 10);
  ASSERT_EQ(grown.size(), 5u);
  EXPECT_EQ(grown[2].id, 5u);
  EXPECT_DOUBLE_EQ(grown[2].score, 3.0);
}

TEST(SimilarityServiceTest, ShortRecordFallbackServesEditDistance) {
  // Tiny strings can be within edit distance k while sharing no q-gram;
  // the per-tier short pools must surface them just like the batch join.
  std::vector<std::string> texts = {"ab",   "ac",    "a",
                                    "xyzw", "abcdefg", "b"};
  TokenDictionary dict;
  RecordSet corpus = BuildQGramCorpus(texts, 3, &dict);
  EditDistancePredicate pred(1, 3);
  SimilarityService service(corpus, pred);
  ExpectQueriesMatchJoin(service, corpus, pred);

  // Grown corpus, short record arriving through the memtable path.
  RecordSet more = BuildQGramCorpus({"abc", "c"}, 3, &dict);
  RecordSet full = corpus;
  for (RecordId id = 0; id < more.size(); ++id) {
    full.Add(more.record(id), more.text(id));
    service.Insert(more.record(id), more.text(id));
  }
  ExpectQueriesMatchJoin(service, full, pred);
}

// The tombstone acceptance check, corpus-independent predicates: deletes
// are visible immediately (base and memtable residents alike), answers
// equal a fresh self-join over the survivors both BEFORE and after
// compaction, and compaction physically drains the tombstones.
TEST(SimilarityServiceTest, DeleteMatchesSurvivorJoinJaccard) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 80}, 31);
  JaccardPredicate pred(0.5);
  SimilarityService service(Slice(corpus, 0, 120), pred, MakeOptions(0));
  for (RecordId id = 120; id < corpus.size(); ++id) {
    service.Insert(corpus.record(id));
  }
  std::vector<bool> deleted(corpus.size(), false);
  // Mixed kill set: base residents and memtable residents.
  for (RecordId id : {3u, 40u, 77u, 119u, 125u, 149u}) {
    EXPECT_TRUE(service.Delete(id));
    deleted[id] = true;
  }
  EXPECT_EQ(service.size(), corpus.size() - 6);
  EXPECT_EQ(service.tombstone_count(), 6u);
  ExpectQueriesMatchSurvivorJoin(service, corpus, deleted, pred);

  service.Compact();
  EXPECT_EQ(service.tombstone_count(), 0u);
  EXPECT_EQ(service.memtable_size(), 0u);
  EXPECT_EQ(service.size(), corpus.size() - 6);
  ExpectQueriesMatchSurvivorJoin(service, corpus, deleted, pred);

  // Ids are never reused: re-inserting deleted content mints a fresh id,
  // and the resurrected content is live under the NEW id only.
  EXPECT_EQ(service.Insert(corpus.record(3)), corpus.size());
  RecordSet extended = corpus;
  extended.Add(corpus.record(3), corpus.text(3));
  deleted.push_back(false);
  ExpectQueriesMatchSurvivorJoin(service, extended, deleted, pred);
}

// Same bar for TF-IDF cosine, where deletes also shift the corpus
// statistics: after Compact() the re-Prepare must run over survivors
// only, so IDF — and hence every score and the answer set — coincides
// with a fresh batch self-join over the survivors.
TEST(SimilarityServiceTest, DeleteThenCompactExactForCosine) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 80}, 32);
  CosinePredicate pred(0.6);
  SimilarityService service(corpus, pred, MakeOptions(0));
  std::vector<bool> deleted(corpus.size(), false);
  for (RecordId id : {0u, 10u, 60u, 61u, 148u}) {
    EXPECT_TRUE(service.Delete(id));
    deleted[id] = true;
  }
  // Pre-compaction: scores still use the stale full-corpus IDF (the
  // serving-time approximation), but tombstoned records must already be
  // hidden from every answer.
  for (RecordId r = 0; r < corpus.size(); ++r) {
    for (const QueryMatch& m : service.Query(corpus.record(r))) {
      EXPECT_FALSE(deleted[m.id]);
    }
  }
  service.Compact();
  ExpectQueriesMatchSurvivorJoin(service, corpus, deleted, pred);
}

TEST(SimilarityServiceTest, DeleteMissesAndDoubleDeletes) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 30, .vocabulary = 30}, 33);
  JaccardPredicate pred(0.5);
  SimilarityService service(corpus, pred);
  uint64_t epoch = service.epoch();
  EXPECT_FALSE(service.Delete(30));      // out of range
  EXPECT_FALSE(service.Delete(100000));  // far out of range
  EXPECT_TRUE(service.Delete(7));
  EXPECT_FALSE(service.Delete(7));  // double delete
  service.Compact();
  EXPECT_FALSE(service.Delete(7));  // still dead after the physical drop
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.delete_misses, 4u);
  // Only the successful delete and the compaction published.
  EXPECT_EQ(service.epoch(), epoch + 2);
}

// Token-less records are legal corpus members: they route to shard 0 on
// Insert AND Delete (no largest token to route by), survive compaction,
// and never crash the probe paths.
TEST(SimilarityServiceTest, EmptyRecordsInsertDeleteAndCompact) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 40, .vocabulary = 30}, 34);
  JaccardPredicate pred(0.5);
  ServiceOptions options = MakeOptions(0);
  options.num_shards = 7;
  SimilarityService service(corpus, pred, options);
  const RecordId empty_id = service.Insert(Record::FromTokens({}));
  EXPECT_EQ(empty_id, corpus.size());
  EXPECT_EQ(service.stats().shards[0].inserts, 1u);
  // An empty probe matches nothing under a token-overlap predicate.
  EXPECT_TRUE(service.Query(Record::FromTokens({})).empty());
  service.Compact();
  EXPECT_EQ(service.size(), corpus.size() + 1);
  EXPECT_TRUE(service.Delete(empty_id));
  EXPECT_EQ(service.stats().shards[0].deletes, 1u);
  service.Compact();
  EXPECT_EQ(service.size(), corpus.size());
  EXPECT_FALSE(service.Delete(empty_id));
}

// Deleting a record that only ever lived in the memtable: the delta
// image must hide it immediately and compaction must not resurrect it.
TEST(SimilarityServiceTest, DeleteOfMemtableResident) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 50, .vocabulary = 40}, 35);
  JaccardPredicate pred(0.5);
  SimilarityService service(Slice(corpus, 0, 49), pred, MakeOptions(0));
  const RecordView newcomer = corpus.record(49);
  const RecordId id = service.Insert(newcomer);
  EXPECT_TRUE(service.Delete(id));
  auto self = service.Query(newcomer);
  for (const QueryMatch& m : self) EXPECT_NE(m.id, id);
  service.Compact();
  self = service.Query(newcomer);
  for (const QueryMatch& m : self) EXPECT_NE(m.id, id);
  EXPECT_EQ(service.size(), 49u);
}

// A compaction with nothing pending must not rebuild any shard — in
// particular cosine must skip its full re-Prepare — and must not
// publish a new snapshot.
TEST(SimilarityServiceTest, NoOpCompactSkipsRebuilds) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 40}, 36);
  JaccardPredicate jaccard(0.5);
  CosinePredicate cosine(0.6);
  for (const Predicate* pred :
       std::initializer_list<const Predicate*>{&jaccard, &cosine}) {
    ServiceOptions options = MakeOptions(0);
    options.num_shards = 3;
    SimilarityService service(corpus, *pred, options);
    auto rebuilds = [&] {
      uint64_t n = 0;
      for (const ShardStats& s : service.stats().shards) n += s.rebuilds;
      return n;
    };
    const uint64_t built = rebuilds();  // the initial build
    EXPECT_EQ(built, 3u);
    const uint64_t epoch = service.epoch();
    service.Compact();
    service.Compact();
    EXPECT_EQ(rebuilds(), built);
    EXPECT_EQ(service.epoch(), epoch);
    EXPECT_EQ(service.stats().compactions, 2u);
    // A real delete dirties exactly the owning shard (jaccard) or all
    // shards (cosine's statistics rebuild).
    service.Delete(0);
    service.Compact();
    EXPECT_EQ(rebuilds(),
              built + (pred == &cosine ? 3u : 1u));
  }
}

// Top-k must backfill to k SURVIVORS: a deleted record never occupies a
// slot, before or after compaction, and id tie-breaks are preserved.
TEST(SimilarityServiceTest, TopKBackfillsAcrossDeletes) {
  RecordSet corpus;
  corpus.Add(Record::FromTokens({0, 1, 2}));
  corpus.Add(Record::FromTokens({0, 1}));
  corpus.Add(Record::FromTokens({0, 1, 2, 3}));
  corpus.Add(Record::FromTokens({7, 8}));
  corpus.Add(Record::FromTokens({0, 9}));
  OverlapPredicate pred(2);
  SimilarityService service(corpus, pred, MakeOptions(0));

  const RecordView query = corpus.record(0);
  ASSERT_TRUE(service.Delete(2));  // the score-3 runner-up
  std::vector<QueryMatch> top = service.QueryTopK(query, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_DOUBLE_EQ(top[0].score, 3.0);
  EXPECT_EQ(top[1].id, 1u);  // backfilled into the freed slot
  EXPECT_DOUBLE_EQ(top[1].score, 2.0);
  EXPECT_EQ(top[2].id, 4u);
  EXPECT_DOUBLE_EQ(top[2].score, 1.0);
  service.Compact();
  std::vector<QueryMatch> after = service.QueryTopK(query, 3);
  ASSERT_EQ(after.size(), top.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(after[i].id, top[i].id);
    EXPECT_DOUBLE_EQ(after[i].score, top[i].score);
  }
}

// Deletes hide short-pool records too (edit distance): tombstoned tiny
// strings must leave both the q-gram index and the brute-force pool.
TEST(SimilarityServiceTest, DeleteHidesShortRecords) {
  std::vector<std::string> texts = {"ab", "ac", "a", "xyzw", "abcdefg", "b"};
  TokenDictionary dict;
  RecordSet corpus = BuildQGramCorpus(texts, 3, &dict);
  EditDistancePredicate pred(1, 3);
  SimilarityService service(corpus, pred, MakeOptions(0));
  std::vector<bool> deleted(corpus.size(), false);
  ASSERT_TRUE(service.Delete(2));  // "a", inside everyone's short pool
  deleted[2] = true;
  ExpectQueriesMatchSurvivorJoin(service, corpus, deleted, pred);
  service.Compact();
  ExpectQueriesMatchSurvivorJoin(service, corpus, deleted, pred);
}

TEST(SimilarityServiceTest, StatsCountersAndJson) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 40}, 21);
  JaccardPredicate pred(0.5);
  SimilarityService service(Slice(corpus, 0, 50), pred);
  for (RecordId r = 0; r < 10; ++r) service.Query(corpus.record(r));
  service.QueryTopK(corpus.record(0), 3);
  service.BatchQuery(Slice(corpus, 0, 5));
  for (RecordId id = 50; id < 55; ++id) service.Insert(corpus.record(id));
  service.Delete(0);
  service.Delete(0);  // a miss
  service.Compact();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.point_queries, 10u);
  EXPECT_EQ(stats.topk_queries, 1u);
  EXPECT_EQ(stats.batch_queries, 1u);
  EXPECT_EQ(stats.batched_records, 5u);
  EXPECT_EQ(stats.inserts, 5u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.delete_misses, 1u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_GE(stats.results, 10u);  // every query matches itself at least
  EXPECT_GE(stats.candidates, stats.results);
  EXPECT_EQ(stats.query_latency_us.count(), 11u);
  EXPECT_EQ(stats.batch_latency_us.count(), 1u);

  std::string json = service.StatsJson();
  for (const char* key :
       {"\"epoch\"", "\"base_records\"", "\"memtable_records\"",
        "\"live_records\"", "\"tombstones\"", "\"deletes\"",
        "\"delete_misses\"", "\"point_queries\"", "\"compactions\"",
        "\"segments\"", "\"segment_bytes\"", "\"segments_merged\"",
        "\"last_compact_delta_records\"",
        "\"query_latency_us\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// The segment gauges/counters must move in lockstep with the chain:
// construction folds the corpus into one segment, every compaction with
// pending inserts appends exactly one delta segment, the size-tiered
// trigger (segment_merge_ratio) merges trailing segments, tombstone-only
// compactions mask without appending, and ratio 0 collapses the chain
// back to one segment every time (the pre-segmented baseline).
TEST(SimilarityServiceTest, SegmentCountersTrackChainAndMerges) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 160, .vocabulary = 80}, 37);
  JaccardPredicate pred(0.5);
  ServiceOptions options = MakeOptions(0);
  options.segment_merge_ratio = 2;
  SimilarityService service(Slice(corpus, 0, 100), pred, options);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_GT(stats.segment_bytes, 0u);
  EXPECT_EQ(stats.segments_merged, 0u);
  EXPECT_EQ(stats.last_compact_delta_records, 0u);

  // Geometric descending deltas stack segments without tripping the
  // size-tiered trigger: 100 > 2*30 and 30 > 2*10.
  RecordId next = 100;
  auto insert_batch = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) service.Insert(corpus.record(next++));
    service.Compact();
  };
  insert_batch(30);
  stats = service.stats();
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(stats.segments_merged, 0u);
  EXPECT_EQ(stats.last_compact_delta_records, 30u);

  insert_batch(10);
  stats = service.stats();
  EXPECT_EQ(stats.segments, 3u);
  EXPECT_EQ(stats.segments_merged, 0u);
  EXPECT_EQ(stats.last_compact_delta_records, 10u);

  // A 6-record delta trips the trigger twice — (10, 6) -> 16, then
  // (30, 16) -> 46 — and stops against the 100-record base segment
  // (100 > 2*46): four segments retired, two survive.
  insert_batch(6);
  stats = service.stats();
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(stats.segments_merged, 4u);
  EXPECT_EQ(stats.last_compact_delta_records, 6u);

  // A tombstone-only compaction folds a dead mask in place: no segment
  // appended, no merge (99 live > 2*46), delta volume = the 1 tombstone.
  ASSERT_TRUE(service.Delete(0));
  service.Compact();
  stats = service.stats();
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(stats.segments_merged, 4u);
  EXPECT_EQ(stats.last_compact_delta_records, 1u);

  // Ratio 0 is the pre-segmented baseline: every compaction collapses
  // the whole chain back into one segment.
  ServiceOptions baseline = MakeOptions(0);
  baseline.segment_merge_ratio = 0;
  SimilarityService collapsed(Slice(corpus, 0, 100), pred, baseline);
  EXPECT_EQ(collapsed.stats().segments, 1u);
  for (RecordId id = 100; id < 110; ++id) {
    collapsed.Insert(corpus.record(id));
  }
  collapsed.Compact();
  stats = collapsed.stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.segments_merged, 2u);
  EXPECT_EQ(stats.last_compact_delta_records, 10u);
}

TEST(SimilarityServiceTest, LatencyHistogramQuantiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  for (uint64_t us : {1u, 2u, 3u, 100u, 200u, 5000u}) h.Record(us);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.max_micros(), 5000u);
  EXPECT_LE(h.QuantileUpperBound(0.5), 255u);   // 3rd sample's bucket
  EXPECT_EQ(h.QuantileUpperBound(1.0), 5000u);  // clamped to the max
  EXPECT_GE(h.QuantileUpperBound(0.99), 4096u);
}

// Regression: sub-microsecond samples truncate to 0 micros, which must
// land in bucket 0 (a log2 bucket index computed with __builtin_clzll
// would be undefined at 0). All-zero histograms report zero quantiles.
TEST(SimilarityServiceTest, LatencyHistogramZeroSamples) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max_micros(), 0u);
  EXPECT_EQ(h.QuantileUpperBound(0.0), 0u);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(h.QuantileUpperBound(1.0), 0u);
  h.Record(1);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);  // 3 of 4 samples are 0
  EXPECT_EQ(h.QuantileUpperBound(1.0), 1u);
}

// Regression alongside the bucket-0 guard: a histogram that never saw a
// sample must summarize to 0 for EVERY quantile, including the ones an
// unchecked rank walk would mangle — out-of-range and NaN inputs clamp
// instead of reading uninitialized bucket state.
TEST(SimilarityServiceTest, LatencyHistogramNoSamplesReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_micros(), 0u);
  for (double q : {0.0, 0.5, 0.99, 1.0, -3.0, 42.0}) {
    EXPECT_EQ(h.QuantileUpperBound(q), 0u) << "q=" << q;
  }
  EXPECT_EQ(h.QuantileUpperBound(std::nan("")), 0u);
  // With samples, out-of-range quantiles clamp to the endpoints.
  h.Record(8);
  EXPECT_EQ(h.QuantileUpperBound(-1.0), h.QuantileUpperBound(0.0));
  EXPECT_EQ(h.QuantileUpperBound(2.0), h.QuantileUpperBound(1.0));
  EXPECT_EQ(h.QuantileUpperBound(std::nan("")), h.QuantileUpperBound(0.0));
}

// The TSan acceptance test: concurrent point queries, batch queries and
// an inserting/compacting writer over the same service. Exercises the
// snapshot swap, the copy-on-write delta rebuild and the stats mutex.
TEST(SimilarityServiceTest, ConcurrentReadersAndWriter) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 60}, 22);
  RecordSet extra = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 60}, 23);
  JaccardPredicate pred(0.5);
  SimilarityService service(corpus, pred,
                            MakeOptions(16, 2));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t local_epoch = 0;
      for (RecordId r = 0; !stop.load(std::memory_order_relaxed);
           r = (r + 7 + static_cast<RecordId>(t)) %
               static_cast<RecordId>(corpus.size())) {
        std::vector<QueryMatch> matches = service.Query(corpus.record(r));
        // Answers are id-sorted and epochs only move forward.
        for (size_t i = 1; i < matches.size(); ++i) {
          ASSERT_LT(matches[i - 1].id, matches[i].id);
        }
        uint64_t epoch = service.epoch();
        ASSERT_GE(epoch, local_epoch);
        local_epoch = epoch;
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread batcher([&] {
    RecordSet queries = Slice(corpus, 0, 20);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::vector<QueryMatch>> results =
          service.BatchQuery(queries);
      ASSERT_EQ(results.size(), queries.size());
    }
  });

  for (RecordId id = 0; id < extra.size(); ++id) {
    service.Insert(extra.record(id));
    if (id % 25 == 24) service.Compact();
  }
  // Let the readers observe the final state for a few rounds.
  while (answered.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  batcher.join();

  EXPECT_EQ(service.size(), corpus.size() + extra.size());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.inserts, extra.size());
  EXPECT_GE(stats.point_queries, 200u);
}

}  // namespace
}  // namespace ssjoin
