#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/foreign_join.h"
#include "core/jaccard_predicate.h"
#include "index/index_io.h"
#include "test_util.h"
#include "util/varint.h"

namespace ssjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  out->append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

void AppendFloat(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  out->append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

/// Starts a byte-exact index file: magic, entity count, min_norm, list
/// count. Tests append hand-crafted list payloads to probe the loader.
std::string FileHeader(uint64_t num_entities, uint64_t num_lists) {
  std::string bytes("SSJI", 4);
  PutVarint64(&bytes, num_entities);
  AppendDouble(&bytes, 1.0);
  PutVarint64(&bytes, num_lists);
  return bytes;
}

Status LoadBytes(const std::string& name, const std::string& bytes) {
  std::string path = TempPath(name);
  std::ofstream(path, std::ios::binary) << bytes;
  Result<InvertedIndex> loaded = LoadIndex(path);
  return loaded.ok() ? Status::OK() : loaded.status();
}

InvertedIndex BuildIndex(const RecordSet& records) {
  InvertedIndex index;
  index.PlanFromRecords(records);
  for (RecordId id = 0; id < records.size(); ++id) {
    index.Insert(id, records.record(id));
  }
  return index;
}

TEST(IndexIoTest, RoundTripPreservesStructure) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 60}, 61);
  JaccardPredicate pred(0.5);
  pred.Prepare(&records);
  InvertedIndex original = BuildIndex(records);

  std::string path = TempPath("index_roundtrip.idx");
  ASSERT_TRUE(SaveIndex(original, path).ok());
  Result<InvertedIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().num_entities(), original.num_entities());
  EXPECT_EQ(loaded.value().total_postings(), original.total_postings());
  EXPECT_EQ(loaded.value().num_tokens(), original.num_tokens());
  EXPECT_DOUBLE_EQ(loaded.value().min_norm(), original.min_norm());

  original.ForEachList([&](TokenId t, PostingListView list) {
    const PostingListView restored = loaded.value().list(t);
    ASSERT_FALSE(restored.empty()) << "token " << t;
    ASSERT_EQ(restored.size(), list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(restored[i].id, list[i].id);
      EXPECT_FLOAT_EQ(static_cast<float>(restored[i].score),
                      static_cast<float>(list[i].score));
    }
    EXPECT_FLOAT_EQ(static_cast<float>(restored.max_score()),
                    static_cast<float>(list.max_score()));
  });
}

TEST(IndexIoTest, EmptyIndexRoundTrips) {
  InvertedIndex empty;
  std::string path = TempPath("index_empty.idx");
  ASSERT_TRUE(SaveIndex(empty, path).ok());
  Result<InvertedIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_entities(), 0u);
  EXPECT_EQ(loaded.value().total_postings(), 0u);
  EXPECT_TRUE(std::isinf(loaded.value().min_norm()));
}

TEST(IndexIoTest, CanonicalBytes) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 50, .vocabulary = 30}, 62);
  InvertedIndex index = BuildIndex(records);
  std::string path_a = TempPath("index_a.idx");
  std::string path_b = TempPath("index_b.idx");
  ASSERT_TRUE(SaveIndex(index, path_a).ok());
  ASSERT_TRUE(SaveIndex(index, path_b).ok());
  std::ifstream a(path_a, std::ios::binary), b(path_b, std::ios::binary);
  std::string bytes_a((std::istreambuf_iterator<char>(a)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(b)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(IndexIoTest, RejectsCorruptFiles) {
  std::string path = TempPath("index_corrupt.idx");
  std::ofstream(path, std::ios::binary) << "definitely not an index";
  EXPECT_FALSE(LoadIndex(path).ok());

  // Truncations of a valid file must all be rejected.
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 15}, 63);
  InvertedIndex index = BuildIndex(records);
  std::string valid_path = TempPath("index_valid.idx");
  ASSERT_TRUE(SaveIndex(index, valid_path).ok());
  std::ifstream in(valid_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  for (size_t cut = 1; cut < bytes.size(); cut += 7) {
    std::string truncated_path = TempPath("index_truncated.idx");
    std::ofstream(truncated_path, std::ios::binary)
        << bytes.substr(0, bytes.size() - cut);
    EXPECT_FALSE(LoadIndex(truncated_path).ok()) << "cut=" << cut;
  }
}

TEST(IndexIoTest, RejectsImplausibleEntityCount) {
  // RecordIds are 32-bit; a larger count cannot come from SaveIndex.
  std::string bytes =
      FileHeader(uint64_t{std::numeric_limits<uint32_t>::max()} + 1, 0);
  Status status = LoadBytes("index_huge_entities.idx", bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("implausible entity count"),
            std::string::npos);
}

TEST(IndexIoTest, RejectsImplausibleTokenId) {
  // A garbage token id must be rejected before it sizes the counts
  // vector (a naive loader would attempt a multi-gigabyte allocation).
  std::string bytes = FileHeader(2, 1);
  PutVarint32(&bytes, (1u << 30) + 1);  // token
  PutVarint32(&bytes, 1);               // count
  PutVarint32(&bytes, 0);               // id 0
  AppendFloat(&bytes, 1.0f);
  Status status = LoadBytes("index_huge_token.idx", bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("implausible token id"),
            std::string::npos);
}

TEST(IndexIoTest, RejectsOutOfOrderAndDuplicateLists) {
  for (uint32_t second_token : {3u, 5u}) {  // below and equal to the first
    std::string bytes = FileHeader(2, 2);
    for (uint32_t token : {5u, second_token}) {
      PutVarint32(&bytes, token);
      PutVarint32(&bytes, 1);  // count
      PutVarint32(&bytes, 0);  // id 0
      AppendFloat(&bytes, 1.0f);
    }
    Status status = LoadBytes("index_token_order.idx", bytes);
    ASSERT_FALSE(status.ok()) << "second token " << second_token;
    EXPECT_NE(status.ToString().find("out of order"), std::string::npos);
  }
}

TEST(IndexIoTest, RejectsEmptyPostingList) {
  std::string bytes = FileHeader(2, 1);
  PutVarint32(&bytes, 0);  // token
  PutVarint32(&bytes, 0);  // count 0: SaveIndex never emits empty lists
  Status status = LoadBytes("index_empty_list.idx", bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("empty posting list"), std::string::npos);
}

TEST(IndexIoTest, RejectsCountExceedingEntityCount) {
  std::string bytes = FileHeader(2, 1);
  PutVarint32(&bytes, 0);  // token
  PutVarint32(&bytes, 3);  // count > num_entities
  for (int i = 0; i < 3; ++i) PutVarint32(&bytes, i == 0 ? 0 : 1);
  for (int i = 0; i < 3; ++i) AppendFloat(&bytes, 1.0f);
  Status status = LoadBytes("index_overfull_list.idx", bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("exceeds entity count"),
            std::string::npos);
}

TEST(IndexIoTest, RejectsNonMonotonePostingIds) {
  std::string bytes = FileHeader(4, 1);
  PutVarint32(&bytes, 0);  // token
  PutVarint32(&bytes, 2);  // count
  PutVarint32(&bytes, 1);  // id 1
  PutVarint32(&bytes, 0);  // delta 0: id repeats
  AppendFloat(&bytes, 1.0f);
  AppendFloat(&bytes, 1.0f);
  Status status = LoadBytes("index_non_monotone.idx", bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("non-monotone"), std::string::npos);
}

TEST(IndexIoTest, RejectsPostingIdOutOfRange) {
  std::string bytes = FileHeader(3, 1);
  PutVarint32(&bytes, 0);  // token
  PutVarint32(&bytes, 1);  // count
  PutVarint32(&bytes, 7);  // id 7 >= num_entities 3
  AppendFloat(&bytes, 1.0f);
  Status status = LoadBytes("index_id_range.idx", bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("out of range"), std::string::npos);
}

TEST(IndexIoTest, RejectsNonFiniteScore) {
  std::string bytes = FileHeader(2, 1);
  PutVarint32(&bytes, 0);  // token
  PutVarint32(&bytes, 1);  // count
  PutVarint32(&bytes, 0);  // id 0
  AppendFloat(&bytes, std::numeric_limits<float>::quiet_NaN());
  Status status = LoadBytes("index_nan_score.idx", bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("non-finite"), std::string::npos);
}

TEST(IndexIoTest, HandCraftedValidFileLoads) {
  // The rejection tests above prove the loader is strict; this proves it
  // is not *too* strict: a minimal well-formed file still loads.
  std::string bytes = FileHeader(3, 2);
  PutVarint32(&bytes, 1);  // token 1
  PutVarint32(&bytes, 2);  // count
  PutVarint32(&bytes, 0);  // id 0
  PutVarint32(&bytes, 2);  // id 2
  AppendFloat(&bytes, 0.5f);
  AppendFloat(&bytes, 0.25f);
  PutVarint32(&bytes, 4);  // token 4
  PutVarint32(&bytes, 1);  // count
  PutVarint32(&bytes, 1);  // id 1
  AppendFloat(&bytes, 1.0f);
  std::string path = TempPath("index_handmade.idx");
  std::ofstream(path, std::ios::binary) << bytes;
  Result<InvertedIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_entities(), 3u);
  EXPECT_EQ(loaded.value().total_postings(), 3u);
  ASSERT_EQ(loaded.value().list(1).size(), 2u);
  EXPECT_EQ(loaded.value().list(1)[1].id, 2u);
  EXPECT_FLOAT_EQ(static_cast<float>(loaded.value().list(4)[0].score), 1.0f);
}

TEST(IndexIoTest, MissingFile) {
  Result<InvertedIndex> loaded = LoadIndex(TempPath("no_such_index.idx"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(IndexIoTest, FailedSaveLeavesPreviousFileReadable) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 30, .vocabulary = 20}, 64);
  InvertedIndex index = BuildIndex(records);
  std::string path = TempPath("index_atomic.idx");
  ASSERT_TRUE(SaveIndex(index, path).ok());

  // Force the re-save to fail mid-write: a directory squats on the tmp
  // path, so the open of `<path>.tmp` errors out. The previous good file
  // must be untouched — the whole point of tmp-then-rename over opening
  // the destination with ios::trunc.
  ASSERT_EQ(::mkdir((path + ".tmp").c_str(), 0755), 0);
  RecordSet bigger = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 20}, 65);
  Status failed = SaveIndex(BuildIndex(bigger), path);
  ASSERT_FALSE(failed.ok());
  ASSERT_EQ(::rmdir((path + ".tmp").c_str()), 0);

  Result<InvertedIndex> survivor = LoadIndex(path);
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
  EXPECT_EQ(survivor.value().num_entities(), index.num_entities());
  EXPECT_EQ(survivor.value().total_postings(), index.total_postings());
}

TEST(IndexIoTest, ErrorsCarryErrnoContext) {
  // Operators need to tell ENOSPC from EACCES from ENOENT: I/O statuses
  // must embed strerror(errno), not just the path.
  Result<InvertedIndex> missing = LoadIndex(TempPath("enoent_index.idx"));
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find(std::strerror(ENOENT)),
            std::string::npos)
      << missing.status().ToString();

  std::string blocked = TempPath("blocked_index.idx");
  ASSERT_EQ(::mkdir((blocked + ".tmp").c_str(), 0755), 0);
  InvertedIndex empty;
  Status save = SaveIndex(empty, blocked);
  ASSERT_FALSE(save.ok());
  // open(O_WRONLY) on a directory fails EISDIR on Linux.
  EXPECT_NE(save.message().find(std::strerror(EISDIR)), std::string::npos)
      << save.ToString();
  ASSERT_EQ(::rmdir((blocked + ".tmp").c_str()), 0);
}

}  // namespace
}  // namespace ssjoin
