#include <cmath>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/foreign_join.h"
#include "core/jaccard_predicate.h"
#include "index/index_io.h"
#include "test_util.h"

namespace ssjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

InvertedIndex BuildIndex(const RecordSet& records) {
  InvertedIndex index;
  index.PlanFromRecords(records);
  for (RecordId id = 0; id < records.size(); ++id) {
    index.Insert(id, records.record(id));
  }
  return index;
}

TEST(IndexIoTest, RoundTripPreservesStructure) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 60}, 61);
  JaccardPredicate pred(0.5);
  pred.Prepare(&records);
  InvertedIndex original = BuildIndex(records);

  std::string path = TempPath("index_roundtrip.idx");
  ASSERT_TRUE(SaveIndex(original, path).ok());
  Result<InvertedIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().num_entities(), original.num_entities());
  EXPECT_EQ(loaded.value().total_postings(), original.total_postings());
  EXPECT_EQ(loaded.value().num_tokens(), original.num_tokens());
  EXPECT_DOUBLE_EQ(loaded.value().min_norm(), original.min_norm());

  original.ForEachList([&](TokenId t, PostingListView list) {
    const PostingListView restored = loaded.value().list(t);
    ASSERT_FALSE(restored.empty()) << "token " << t;
    ASSERT_EQ(restored.size(), list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(restored[i].id, list[i].id);
      EXPECT_FLOAT_EQ(static_cast<float>(restored[i].score),
                      static_cast<float>(list[i].score));
    }
    EXPECT_FLOAT_EQ(static_cast<float>(restored.max_score()),
                    static_cast<float>(list.max_score()));
  });
}

TEST(IndexIoTest, EmptyIndexRoundTrips) {
  InvertedIndex empty;
  std::string path = TempPath("index_empty.idx");
  ASSERT_TRUE(SaveIndex(empty, path).ok());
  Result<InvertedIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_entities(), 0u);
  EXPECT_EQ(loaded.value().total_postings(), 0u);
  EXPECT_TRUE(std::isinf(loaded.value().min_norm()));
}

TEST(IndexIoTest, CanonicalBytes) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 50, .vocabulary = 30}, 62);
  InvertedIndex index = BuildIndex(records);
  std::string path_a = TempPath("index_a.idx");
  std::string path_b = TempPath("index_b.idx");
  ASSERT_TRUE(SaveIndex(index, path_a).ok());
  ASSERT_TRUE(SaveIndex(index, path_b).ok());
  std::ifstream a(path_a, std::ios::binary), b(path_b, std::ios::binary);
  std::string bytes_a((std::istreambuf_iterator<char>(a)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(b)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(IndexIoTest, RejectsCorruptFiles) {
  std::string path = TempPath("index_corrupt.idx");
  std::ofstream(path, std::ios::binary) << "definitely not an index";
  EXPECT_FALSE(LoadIndex(path).ok());

  // Truncations of a valid file must all be rejected.
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 20, .vocabulary = 15}, 63);
  InvertedIndex index = BuildIndex(records);
  std::string valid_path = TempPath("index_valid.idx");
  ASSERT_TRUE(SaveIndex(index, valid_path).ok());
  std::ifstream in(valid_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  for (size_t cut = 1; cut < bytes.size(); cut += 7) {
    std::string truncated_path = TempPath("index_truncated.idx");
    std::ofstream(truncated_path, std::ios::binary)
        << bytes.substr(0, bytes.size() - cut);
    EXPECT_FALSE(LoadIndex(truncated_path).ok()) << "cut=" << cut;
  }
}

TEST(IndexIoTest, MissingFile) {
  Result<InvertedIndex> loaded = LoadIndex(TempPath("no_such_index.idx"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace ssjoin
