#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace ssjoin {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(VarintTest, RoundTrips32) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 1u << 20,
                     0xFFFFFFFFu}) {
    std::string buf;
    PutVarint32(&buf, v);
    EXPECT_EQ(buf.size(), Varint32Size(v));
    size_t offset = 0;
    uint32_t decoded = 0;
    ASSERT_TRUE(GetVarint32(buf, &offset, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(VarintTest, RoundTrips64) {
  for (uint64_t v :
       {uint64_t{0}, uint64_t{127}, uint64_t{128}, uint64_t{1} << 35,
        ~uint64_t{0}}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buf, &offset, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, RejectsTruncatedInput) {
  std::string buf;
  PutVarint32(&buf, 300000);
  buf.pop_back();
  size_t offset = 0;
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(buf, &offset, &decoded));
}

TEST(VarintTest, RejectsOverlongEncoding) {
  std::string buf(6, static_cast<char>(0x80));  // 6 continuation bytes
  size_t offset = 0;
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(buf, &offset, &decoded));
}

TEST(VarintTest, Rejects32BitOverflowInFinalByte) {
  // Five bytes whose last payload exceeds the 4 bits that remain at
  // shift 28: accepting it would silently wrap the shifted value.
  std::string buf = {'\x80', '\x80', '\x80', '\x80', '\x7F'};
  size_t offset = 0;
  uint32_t decoded = 0;
  EXPECT_FALSE(GetVarint32(buf, &offset, &decoded));

  // The largest canonical final byte (0x0F -> value 0xFFFFFFFF) decodes.
  std::string max = {'\xFF', '\xFF', '\xFF', '\xFF', '\x0F'};
  offset = 0;
  ASSERT_TRUE(GetVarint32(max, &offset, &decoded));
  EXPECT_EQ(decoded, 0xFFFFFFFFu);

  // One payload bit more does not.
  std::string over = {'\xFF', '\xFF', '\xFF', '\xFF', '\x10'};
  offset = 0;
  EXPECT_FALSE(GetVarint32(over, &offset, &decoded));
}

TEST(VarintTest, Rejects64BitOverflowInFinalByte) {
  // Ten bytes with more than the single bit that remains at shift 63.
  std::string buf(9, static_cast<char>(0xFF));
  buf.push_back('\x7F');
  size_t offset = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(buf, &offset, &decoded));

  // The canonical encoding of ~0 (final byte 0x01) still decodes.
  std::string max(9, static_cast<char>(0xFF));
  max.push_back('\x01');
  offset = 0;
  ASSERT_TRUE(GetVarint64(max, &offset, &decoded));
  EXPECT_EQ(decoded, ~uint64_t{0});
}

TEST(VarintTest, RejectsNonCanonicalZeroTail) {
  // {0x80, 0x00} is an overlong encoding of 0; PutVarint never emits a
  // zero byte after a continuation byte.
  std::string buf = {'\x80', '\x00'};
  size_t offset = 0;
  uint32_t decoded32 = 0;
  EXPECT_FALSE(GetVarint32(buf, &offset, &decoded32));
  offset = 0;
  uint64_t decoded64 = 0;
  EXPECT_FALSE(GetVarint64(buf, &offset, &decoded64));
}

TEST(VarintTest, RejectsTruncated64BitInput) {
  std::string buf;
  PutVarint64(&buf, uint64_t{1} << 40);
  buf.pop_back();
  size_t offset = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(buf, &offset, &decoded));
}

TEST(VarintTest, DeltaListRoundTrip) {
  std::vector<uint32_t> ids = {0, 0, 3, 3, 10, 500000, 500001};
  std::string encoded = EncodeDeltaList(ids);
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DecodeDeltaList(encoded, &decoded));
  EXPECT_EQ(decoded, ids);
}

TEST(VarintTest, DeltaListRejectsOversizedCount) {
  // A header claiming far more deltas than there are bytes left must be
  // rejected up front, not after reserving a huge vector.
  std::string encoded;
  PutVarint32(&encoded, 0xFFFFFFFFu);
  encoded.push_back('\x01');
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(DecodeDeltaList(encoded, &decoded));
}

TEST(VarintTest, DeltaListRejectsTrailingGarbage) {
  std::string encoded = EncodeDeltaList({1, 2, 3});
  encoded.push_back('\0');
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(DecodeDeltaList(encoded, &decoded));
}

TEST(VarintTest, RandomDeltaListsRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> ids;
    uint32_t v = 0;
    int n = rng.UniformInt(0, 200);
    for (int i = 0; i < n; ++i) {
      v += rng.UniformU32(1000);
      ids.push_back(v);
    }
    std::vector<uint32_t> decoded;
    ASSERT_TRUE(DecodeDeltaList(EncodeDeltaList(ids), &decoded));
    EXPECT_EQ(decoded, ids);
  }
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU32(17), 17u);
    int v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.UniformU32(8)];
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 expected each
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(5);
  ZipfTable zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
}

TEST(ZipfTest, ZeroExponentIsUniformish) {
  Rng rng(6);
  ZipfTable zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(StringUtilTest, SplitAndTrim) {
  auto pieces = SplitAndTrim("  foo  bar\tbaz\n");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "foo");
  EXPECT_EQ(pieces[1], "bar");
  EXPECT_EQ(pieces[2], "baz");
  EXPECT_TRUE(SplitAndTrim("").empty());
  EXPECT_TRUE(SplitAndTrim("   ").empty());
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("AbC 123 xYz"), "abc 123 xyz");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace ssjoin
