// Randomized differential testing: every iteration draws a corpus shape,
// a predicate, an algorithm and a random knob assignment, then checks the
// join output against brute force. The option space here is deliberately
// wider than the structured equivalence suite (filters toggled off,
// extreme cluster limits, tiny miner valves, odd memory budgets) — the
// places where pruning bugs hide.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_coefficient_predicate.h"
#include "core/overlap_predicate.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

using PairVector = std::vector<std::pair<RecordId, RecordId>>;

std::unique_ptr<Predicate> RandomPredicate(Rng& rng, std::string* label) {
  switch (rng.UniformU32(6)) {
    case 0: {
      double t = 1 + rng.UniformU32(8);
      *label = "overlap(" + std::to_string(t) + ")";
      return std::make_unique<OverlapPredicate>(t);
    }
    case 1: {
      double t = 2 + rng.UniformU32(5);
      std::vector<double> weights(200);
      for (double& w : weights) w = 0.2 + rng.NextDouble() * 3;
      *label = "weighted-overlap(" + std::to_string(t) + ")";
      return std::make_unique<OverlapPredicate>(t, std::move(weights));
    }
    case 2: {
      double f = 0.2 + rng.NextDouble() * 0.75;
      *label = "jaccard(" + std::to_string(f) + ")";
      return std::make_unique<JaccardPredicate>(f);
    }
    case 3: {
      double f = 0.25 + rng.NextDouble() * 0.7;
      *label = "cosine(" + std::to_string(f) + ")";
      return std::make_unique<CosinePredicate>(f);
    }
    case 4: {
      double f = 0.3 + rng.NextDouble() * 0.65;
      *label = "dice(" + std::to_string(f) + ")";
      return std::make_unique<DicePredicate>(f);
    }
    default: {
      double k = rng.UniformU32(9);
      *label = "hamming(" + std::to_string(k) + ")";
      return std::make_unique<HammingPredicate>(k);
    }
  }
}

JoinAlgorithm RandomAlgorithm(Rng& rng, bool constant_threshold) {
  const JoinAlgorithm general[] = {
      JoinAlgorithm::kProbeCount,        JoinAlgorithm::kProbeOptMerge,
      JoinAlgorithm::kProbeOnline,       JoinAlgorithm::kProbeSort,
      JoinAlgorithm::kProbeCluster,      JoinAlgorithm::kPairCount,
      JoinAlgorithm::kPairCountOptMerge, JoinAlgorithm::kClusterMem,
  };
  const JoinAlgorithm constant_only[] = {
      JoinAlgorithm::kProbeStopwords,
      JoinAlgorithm::kWordGroups,
      JoinAlgorithm::kWordGroupsOptMerge,
  };
  if (constant_threshold && rng.Bernoulli(0.3)) {
    return constant_only[rng.UniformU32(std::size(constant_only))];
  }
  return general[rng.UniformU32(std::size(general))];
}

JoinOptions RandomOptions(Rng& rng) {
  JoinOptions options;
  options.probe.apply_filter = rng.Bernoulli(0.8);
  options.probe.presort = rng.Bernoulli(0.5);

  options.cluster.presort = rng.Bernoulli(0.5);
  options.cluster.apply_filter = rng.Bernoulli(0.8);
  options.cluster.cluster.assign_similarity_threshold =
      rng.NextDouble() * 0.9;
  if (rng.Bernoulli(0.3)) {
    options.cluster.cluster.max_cluster_size = 2 + rng.UniformU32(20);
  }
  if (rng.Bernoulli(0.3)) {
    options.cluster.cluster.max_clusters = 1 + rng.UniformU32(30);
  }

  options.cluster_mem.memory_budget_postings = 10 + rng.UniformU32(2000);
  options.cluster_mem.temp_dir = ::testing::TempDir();
  options.cluster_mem.presort = rng.Bernoulli(0.5);

  options.word_groups.miner = rng.Bernoulli(0.5)
                                  ? WordGroupsMiner::kApriori
                                  : WordGroupsMiner::kDepthFirst;
  options.word_groups.apriori.early_output_support = 2 + rng.UniformU32(10);
  options.word_groups.apriori.minhash_compaction = rng.Bernoulli(0.7);
  options.word_groups.apriori.compaction_threshold =
      0.4 + rng.NextDouble() * 0.6;
  if (rng.Bernoulli(0.3)) {
    options.word_groups.apriori.max_level = 1 + rng.UniformU32(5);
  }
  if (rng.Bernoulli(0.2)) {
    options.word_groups.apriori.max_open_itemsets = 1 + rng.UniformU32(50);
  }
  return options;
}

TEST(DifferentialTest, RandomizedOptionSweep) {
  Rng rng(20260707);
  for (int iteration = 0; iteration < 60; ++iteration) {
    testing_util::RandomSetOptions shape;
    shape.num_records = 40 + rng.UniformU32(100);
    shape.vocabulary = 20 + rng.UniformU32(120);
    shape.min_tokens = 1 + rng.UniformU32(3);
    shape.max_tokens = shape.min_tokens + 2 + rng.UniformU32(12);
    shape.zipf_exponent = 0.5 + rng.NextDouble();
    shape.duplicate_fraction = rng.NextDouble() * 0.7;
    RecordSet base =
        testing_util::MakeRandomRecordSet(shape, 9000 + iteration);

    std::string label;
    std::unique_ptr<Predicate> pred = RandomPredicate(rng, &label);
    JoinAlgorithm algorithm = RandomAlgorithm(
        rng, pred->ConstantThreshold().has_value() &&
                 pred->has_static_weights());
    JoinOptions options = RandomOptions(rng);

    SCOPED_TRACE("iteration " + std::to_string(iteration) + ": " + label +
                 " via " + JoinAlgorithmName(algorithm));

    RecordSet reference_set = base;
    pred->Prepare(&reference_set);
    PairVector expected;
    BruteForceJoin(reference_set, *pred,
                   [&expected](RecordId a, RecordId b) {
                     expected.emplace_back(a, b);
                   });
    std::sort(expected.begin(), expected.end());

    RecordSet working = base;
    Result<PairVector> actual =
        JoinToPairs(&working, *pred, algorithm, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual.value(), expected);
  }
}

TEST(DifferentialTest, PrefixFilterRandomized) {
  Rng rng(777);
  for (int iteration = 0; iteration < 25; ++iteration) {
    testing_util::RandomSetOptions shape;
    shape.num_records = 50 + rng.UniformU32(100);
    shape.vocabulary = 30 + rng.UniformU32(80);
    RecordSet base =
        testing_util::MakeRandomRecordSet(shape, 7000 + iteration);

    std::string label;
    std::unique_ptr<Predicate> pred;
    switch (rng.UniformU32(4)) {
      case 0:
        pred = std::make_unique<OverlapPredicate>(2.0 + rng.UniformU32(6));
        break;
      case 1:
        pred = std::make_unique<JaccardPredicate>(0.3 + rng.NextDouble() * 0.6);
        break;
      case 2:
        pred = std::make_unique<DicePredicate>(0.3 + rng.NextDouble() * 0.6);
        break;
      default:
        pred = std::make_unique<CosinePredicate>(0.3 + rng.NextDouble() * 0.6);
        break;
    }
    SCOPED_TRACE("iteration " + std::to_string(iteration) + ": " +
                 pred->name());

    RecordSet reference_set = base;
    pred->Prepare(&reference_set);
    PairVector expected;
    BruteForceJoin(reference_set, *pred,
                   [&expected](RecordId a, RecordId b) {
                     expected.emplace_back(a, b);
                   });
    std::sort(expected.begin(), expected.end());

    RecordSet working = base;
    JoinOptions options;
    options.prefix_filter.presort = rng.Bernoulli(0.5);
    options.prefix_filter.apply_filter = rng.Bernoulli(0.8);
    Result<PairVector> actual = JoinToPairs(
        &working, *pred, JoinAlgorithm::kPrefixFilter, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual.value(), expected);
  }
}

}  // namespace
}  // namespace ssjoin
