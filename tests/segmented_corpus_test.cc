// Unit tests for SegmentedCorpus, the non-copying concatenated view over
// a chain of immutable record arenas that the serving tier's segmented
// compaction is built on. The properties under test are exactly the ones
// the tier relies on: positions resolve to the right (segment, local)
// pair across any mix of segment sizes — empty segments included — and
// record/text access through the view is bit-identical to direct access
// into the owning arena.

#include "data/segmented_corpus.h"

#include <memory>
#include <string>
#include <vector>

#include "data/record.h"
#include "data/record_set.h"
#include "gtest/gtest.h"

namespace ssjoin {
namespace {

std::shared_ptr<const RecordSet> MakeSegment(
    const std::vector<std::vector<TokenId>>& rows, const std::string& tag) {
  auto set = std::make_shared<RecordSet>();
  for (size_t i = 0; i < rows.size(); ++i) {
    set->Add(Record::FromTokens(rows[i]), tag + "#" + std::to_string(i));
  }
  return set;
}

TEST(SegmentedCorpusTest, EmptyView) {
  SegmentedCorpus view;
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.num_segments(), 0u);
  EXPECT_TRUE(view.empty());
}

TEST(SegmentedCorpusTest, SingleSegmentMatchesDirectAccess) {
  auto seg = MakeSegment({{1, 2, 3}, {2, 5}, {7}}, "a");
  SegmentedCorpus view;
  view.Append(seg);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.num_segments(), 1u);
  for (RecordId pos = 0; pos < 3; ++pos) {
    const RecordView direct = seg->record(pos);
    const RecordView via = view.record(pos);
    ASSERT_EQ(via.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(via.token(i), direct.token(i));
      EXPECT_EQ(via.score(i), direct.score(i));
    }
    EXPECT_EQ(view.text(pos), seg->text(pos));
  }
}

TEST(SegmentedCorpusTest, LocateResolvesAcrossSegments) {
  SegmentedCorpus view;
  view.Append(MakeSegment({{1}, {2}}, "a"));       // positions 0..1
  view.Append(MakeSegment({{3}, {4}, {5}}, "b"));  // positions 2..4
  view.Append(MakeSegment({{6}}, "c"));            // position 5
  ASSERT_EQ(view.size(), 6u);
  ASSERT_EQ(view.num_segments(), 3u);
  EXPECT_EQ(view.segment_offset(0), 0u);
  EXPECT_EQ(view.segment_offset(1), 2u);
  EXPECT_EQ(view.segment_offset(2), 5u);

  const size_t expected_segment[] = {0, 0, 1, 1, 1, 2};
  const RecordId expected_local[] = {0, 1, 0, 1, 2, 0};
  for (RecordId pos = 0; pos < 6; ++pos) {
    const SegmentedCorpus::Location loc = view.Locate(pos);
    EXPECT_EQ(loc.segment, expected_segment[pos]) << "pos " << pos;
    EXPECT_EQ(loc.local, expected_local[pos]) << "pos " << pos;
  }
}

TEST(SegmentedCorpusTest, EmptySegmentsKeepSlotsAndSkipPositions) {
  SegmentedCorpus view;
  view.Append(MakeSegment({}, "empty0"));
  view.Append(MakeSegment({{1, 2}}, "a"));  // position 0
  view.Append(MakeSegment({}, "empty1"));
  view.Append(MakeSegment({{3}}, "b"));  // position 1
  ASSERT_EQ(view.num_segments(), 4u);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.Locate(0).segment, 1u);
  EXPECT_EQ(view.Locate(0).local, 0u);
  // Position 1 must skip the empty slot at index 2.
  EXPECT_EQ(view.Locate(1).segment, 3u);
  EXPECT_EQ(view.Locate(1).local, 0u);
  EXPECT_EQ(view.text(1), "b#0");
}

TEST(SegmentedCorpusTest, SharesArenasWithoutCopying) {
  auto seg = MakeSegment({{1, 2, 3}}, "shared");
  SegmentedCorpus view;
  view.Append(seg);
  // The view aliases the arena: same text storage, not a copy.
  EXPECT_EQ(&view.text(0), &seg->text(0));
  EXPECT_EQ(&view.segment(0), seg.get());
}

TEST(SegmentedCorpusTest, ConcatenationMatchesMonolithicArena) {
  // Build the same records as one arena and as a 3-segment chain; every
  // position must read back identically through either.
  std::vector<std::vector<TokenId>> rows = {{1, 4}, {2}, {3, 5, 9},
                                            {6},    {7}, {8, 10}};
  RecordSet mono;
  for (size_t i = 0; i < rows.size(); ++i) {
    mono.Add(Record::FromTokens(rows[i]), "r" + std::to_string(i));
  }
  SegmentedCorpus view;
  size_t cuts[] = {0, 2, 3, rows.size()};
  for (size_t c = 0; c + 1 < 4; ++c) {
    auto seg = std::make_shared<RecordSet>();
    for (size_t i = cuts[c]; i < cuts[c + 1]; ++i) {
      seg->Add(Record::FromTokens(rows[i]), "r" + std::to_string(i));
    }
    view.Append(seg);
  }
  ASSERT_EQ(view.size(), mono.size());
  for (RecordId pos = 0; pos < mono.size(); ++pos) {
    const RecordView a = mono.record(pos);
    const RecordView b = view.record(pos);
    ASSERT_EQ(a.size(), b.size()) << "pos " << pos;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.token(i), b.token(i));
      EXPECT_EQ(a.score(i), b.score(i));
    }
    EXPECT_EQ(view.text(pos), mono.text(pos));
  }
}

}  // namespace
}  // namespace ssjoin
