#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "core/prefix_filter_join.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

using PairVector = std::vector<std::pair<RecordId, RecordId>>;

void ExpectMatchesBruteForce(const RecordSet& base, const Predicate& pred) {
  RecordSet reference = base;
  pred.Prepare(&reference);
  PairVector expected;
  BruteForceJoin(reference, pred, [&expected](RecordId a, RecordId b) {
    expected.emplace_back(a, b);
  });
  std::sort(expected.begin(), expected.end());

  for (bool presort : {true, false}) {
    RecordSet working = base;
    JoinOptions options;
    options.prefix_filter.presort = presort;
    Result<PairVector> actual =
        JoinToPairs(&working, pred, JoinAlgorithm::kPrefixFilter, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual.value(), expected)
        << pred.name() << " presort=" << presort;
  }
}

TEST(PrefixFilterTest, OverlapExact) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 160, .vocabulary = 70}, 51);
  for (double t : {2.0, 5.0, 9.0}) {
    ExpectMatchesBruteForce(base, OverlapPredicate(t));
  }
}

TEST(PrefixFilterTest, WeightedOverlapExact) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 50}, 52);
  Rng rng(520);
  std::vector<double> weights(base.vocabulary_size());
  for (double& w : weights) w = 0.25 + rng.NextDouble() * 3;
  ExpectMatchesBruteForce(base, OverlapPredicate(4.0, weights));
}

TEST(PrefixFilterTest, JaccardExact) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 60}, 53);
  for (double f : {0.4, 0.7, 0.9}) {
    ExpectMatchesBruteForce(base, JaccardPredicate(f));
  }
}

TEST(PrefixFilterTest, DiceExact) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 140, .vocabulary = 60}, 54);
  ExpectMatchesBruteForce(base, DicePredicate(0.6));
}

TEST(PrefixFilterTest, CosineExact) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 130, .vocabulary = 60}, 55);
  ExpectMatchesBruteForce(base, CosinePredicate(0.6));
}

TEST(PrefixFilterTest, HammingExactIncludingTinyRecords) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 40, .min_tokens = 1,
       .max_tokens = 6},
      56);
  ExpectMatchesBruteForce(base, HammingPredicate(4));
}

TEST(PrefixFilterTest, RejectsPredicatesWithoutBound) {
  RecordSet base = testing_util::MakeRandomRecordSet({.num_records = 20}, 57);
  // Edit distance: T(r, s) can be <= 0, MinMatchOverlap stays 0.
  EditDistancePredicate pred(2, 3);
  pred.Prepare(&base);
  Result<JoinStats> result =
      PrefixFilterJoin(base, pred, {}, [](RecordId, RecordId) {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrefixFilterTest, PrefixIndexSmallerThanFullIndex) {
  // The point of the filter: at high thresholds only a sliver of each
  // record is indexed.
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 200, .vocabulary = 90}, 58);
  JaccardPredicate pred(0.9);
  pred.Prepare(&base);
  JoinStats stats;
  Result<JoinStats> result =
      PrefixFilterJoin(base, pred, {}, [](RecordId, RecordId) {});
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().index_postings,
            base.total_token_occurrences() / 3);
}

TEST(PrefixFilterTest, EmptyAndDegenerateInputs) {
  OverlapPredicate pred(2);
  RecordSet empty;
  ExpectMatchesBruteForce(empty, pred);

  RecordSet identical;
  for (int i = 0; i < 6; ++i) {
    identical.Add(Record::FromTokens({3, 4, 5}), "");
  }
  ExpectMatchesBruteForce(identical, pred);
}

}  // namespace
}  // namespace ssjoin
