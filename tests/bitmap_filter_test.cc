// Differential lockdown of the bitmap + SIMD candidate-pruning hot path:
//
//   * the XOR-parity overlap bound is a true upper bound for every
//     random pair and every prefix width, including adversarial shapes
//     (all tokens colliding on one bit, empty/single-token records,
//     saturated bitmaps);
//   * ProbeOne with a BitmapGate streams a candidate sequence (ids AND
//     overlaps) bit-identical to the ungated merge, for every predicate
//     that opts in;
//   * ProbeJoin with bitmap_filter on emits byte-identical pairs to the
//     scalar baseline across probe modes (online/two-pass/presort/
//     stopwords);
//   * MergeLowerBound — whatever backend runtime dispatch resolved
//     (AVX2 or scalar, see ActiveMergeBackend) — returns positions
//     identical to the scalar galloping primitive on randomized lists;
//     running the suite under SSJOIN_FORCE_SCALAR=1 (tools/
//     run_scalar_tests.sh) pins the scalar backend, so both paths stay
//     covered;
//   * SimilarityService answers are byte-identical across bitmap widths
//     {0, 64, 128, 192, 256}, and the candidates_bitmap_pruned counter
//     moves exactly when it should.
//
// The randomized sweeps honor SSJOIN_DIFF_SEEDS like the other
// differential suites.

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/merge_opt.h"
#include "core/overlap_predicate.h"
#include "core/probe_common.h"
#include "core/probe_join.h"
#include "data/token_bitmap.h"
#include "index/inverted_index.h"
#include "serve/similarity_service.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

int SeedCount() {
  const char* env = std::getenv("SSJOIN_DIFF_SEEDS");
  if (env == nullptr) return 10;
  int n = std::atoi(env);
  return n > 0 ? n : 10;
}

// ---------------------------------------------------------------------
// The bound itself.

/// Exact number of distinct common tokens of two sorted token sets.
uint32_t ExactCommonTokens(RecordView a, RecordView b) {
  uint32_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.token(i) < b.token(j)) {
      ++i;
    } else if (b.token(j) < a.token(i)) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

TEST(TokenBitmapTest, OverlapBoundDominatesExactCommonForRandomPairs) {
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = 120, .vocabulary = 90}, 1000 + seed);
    Rng rng(seed);
    for (int trial = 0; trial < 400; ++trial) {
      RecordId a = rng.UniformU32(static_cast<uint32_t>(set.size()));
      RecordId b = rng.UniformU32(static_cast<uint32_t>(set.size()));
      const uint32_t exact = ExactCommonTokens(set.record(a), set.record(b));
      const uint32_t na = static_cast<uint32_t>(set.record_size(a));
      const uint32_t nb = static_cast<uint32_t>(set.record_size(b));
      // Every prefix width must stay a valid upper bound, and wider
      // prefixes must never be looser than narrower ones.
      uint32_t prev = na + nb;  // the vacuous 0-word bound, halved below
      for (size_t words = 1; words <= kTokenBitmapWords; ++words) {
        const uint32_t bound =
            TokenBitmapOverlapBound(set.token_bitmap(a), na,
                                    set.token_bitmap(b), nb, words);
        EXPECT_GE(bound, exact)
            << "seed " << seed << " pair (" << a << "," << b << ") words "
            << words;
        EXPECT_LE(bound, prev) << "wider prefix loosened the bound";
        prev = bound;
      }
    }
  }
}

TEST(TokenBitmapTest, AllTokensCollidingOnOneBitStaysSound) {
  // Gather token ids that all hash to the SAME bit position: the
  // degenerate case where the bitmap carries a single parity bit of
  // information. The bound must degrade to (|a|+|b|)/2-ish, never below
  // the exact overlap.
  const uint32_t target_bit = TokenBitmapBit(0);
  std::vector<TokenId> colliders;
  for (TokenId t = 0; colliders.size() < 12 && t < 2000000; ++t) {
    if (TokenBitmapBit(t) == target_bit) colliders.push_back(t);
  }
  ASSERT_GE(colliders.size(), 12u) << "hash never revisits bit "
                                   << target_bit;
  RecordSet set;
  // a: first 8 colliders; b: colliders 4..11 (exact overlap 4, every
  // token on one bit).
  set.Add(Record::FromTokens(std::vector<TokenId>(colliders.begin(),
                                                  colliders.begin() + 8)));
  set.Add(Record::FromTokens(std::vector<TokenId>(colliders.begin() + 4,
                                                  colliders.begin() + 12)));
  const uint32_t exact = ExactCommonTokens(set.record(0), set.record(1));
  EXPECT_EQ(exact, 4u);
  for (size_t words = 1; words <= kTokenBitmapWords; ++words) {
    EXPECT_GE(TokenBitmapOverlapBound(set.token_bitmap(0), 8,
                                      set.token_bitmap(1), 8, words),
              exact)
        << "words " << words;
  }
  // Both records have an even number of tokens on the bit, so both
  // bitmaps are all-zero: XOR popcount 0, bound = (8+8)/2 = 8.
  EXPECT_EQ(TokenBitmapOverlapBound(set.token_bitmap(0), 8,
                                    set.token_bitmap(1), 8,
                                    kTokenBitmapWords),
            8u);
}

TEST(TokenBitmapTest, EmptyAndSingleTokenRecords) {
  RecordSet set;
  set.Add(Record::FromTokens(std::vector<TokenId>{}));   // 0: empty
  set.Add(Record::FromTokens({7}));                      // 1: single
  set.Add(Record::FromTokens({7, 9, 12}));               // 2
  // Empty vs anything: bound (0 + n - pop(B))/2 with pop(B) <= n.
  EXPECT_EQ(TokenBitmapOverlapBound(set.token_bitmap(0), 0,
                                    set.token_bitmap(0), 0,
                                    kTokenBitmapWords),
            0u);
  EXPECT_GE(TokenBitmapOverlapBound(set.token_bitmap(1), 1,
                                    set.token_bitmap(2), 3,
                                    kTokenBitmapWords),
            1u);  // token 7 is common
  EXPECT_LE(TokenBitmapOverlapBound(set.token_bitmap(0), 0,
                                    set.token_bitmap(2), 3,
                                    kTokenBitmapWords),
            1u);  // (0 + 3 - 3)/2 = 0 when no bits collide, <= 1 anyway
  // Identical single-token records: XOR cancels, bound = 1 exactly.
  RecordSet twins;
  twins.Add(Record::FromTokens({42}));
  twins.Add(Record::FromTokens({42}));
  EXPECT_EQ(TokenBitmapOverlapBound(twins.token_bitmap(0), 1,
                                    twins.token_bitmap(1), 1,
                                    kTokenBitmapWords),
            1u);
}

TEST(TokenBitmapTest, SaturatedBitmapsDegradeGracefully) {
  // Records with far more distinct tokens than bits: the XOR popcount
  // carries little signal, but the bound must still dominate the exact
  // overlap.
  Rng rng(77);
  std::vector<TokenId> big_a;
  std::vector<TokenId> big_b;
  for (TokenId t = 0; t < 5000; ++t) {
    if (rng.Bernoulli(0.12)) big_a.push_back(t);
    if (rng.Bernoulli(0.12)) big_b.push_back(t);
  }
  ASSERT_GT(big_a.size(), kTokenBitmapBits);
  ASSERT_GT(big_b.size(), kTokenBitmapBits);
  RecordSet set;
  set.Add(Record::FromTokens(big_a));
  set.Add(Record::FromTokens(big_b));
  const uint32_t exact = ExactCommonTokens(set.record(0), set.record(1));
  for (size_t words = 1; words <= kTokenBitmapWords; ++words) {
    EXPECT_GE(
        TokenBitmapOverlapBound(set.token_bitmap(0),
                                static_cast<uint32_t>(big_a.size()),
                                set.token_bitmap(1),
                                static_cast<uint32_t>(big_b.size()), words),
        exact)
        << "words " << words;
  }
}

// ---------------------------------------------------------------------
// Candidate-stream bit-identity at the merge level: ProbeOne with and
// without a gate must emit the same (id, overlap) sequence.

struct Candidate {
  RecordId id;
  double overlap;
  bool operator==(const Candidate& other) const {
    return id == other.id && overlap == other.overlap;
  }
};

/// All candidate streams of probing every record of `records` against an
/// index of all records, service-style bounds (floor + per-candidate
/// required + optional norm filter). `gate_words` 0 = no gate.
std::vector<std::vector<Candidate>> CollectCandidateStreams(
    const RecordSet& records, const Predicate& pred, size_t gate_words,
    MergeStats* stats) {
  InvertedIndex index;
  index.PlanFromRecords(records);
  for (RecordId id = 0; id < records.size(); ++id) {
    index.Insert(id, records.record(id), nullptr);
  }
  probe_internal::ProbeScratch scratch;
  std::vector<std::vector<Candidate>> streams(records.size());
  for (RecordId q = 0; q < records.size(); ++q) {
    const RecordView probe = records.record(q);
    double floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
    auto required_fn = [&](RecordId m) {
      return pred.ThresholdForNorms(probe.norm(), records.record(m).norm());
    };
    FunctionRef<double(RecordId)> required = required_fn;
    auto filter_fn = [&](RecordId m) {
      return pred.NormFilter(probe.norm(), records.record(m).norm());
    };
    FunctionRef<bool(RecordId)> filter;
    if (pred.has_norm_filter()) filter = filter_fn;
    auto lookup = [&](RecordId m) {
      const TokenBitmapEntry& e = records.token_bitmap_entry(m);
      return BitmapCandidate{e.bits, static_cast<uint32_t>(e.tokens)};
    };
    BitmapGate gate;
    gate.lookup = lookup;
    gate.probe_bits = records.token_bitmap(q);
    gate.probe_tokens = static_cast<uint32_t>(probe.size());
    gate.words = gate_words;
    auto emit = [&](const MergeCandidate& c) {
      streams[q].push_back({c.id, c.overlap});
    };
    probe_internal::ProbeOne(index, probe, floor, required, filter,
                             MergeOptions{}, stats, &scratch, emit,
                             gate_words > 0 ? &gate : nullptr);
  }
  return streams;
}

void ExpectSameStreams(const std::vector<std::vector<Candidate>>& expected,
                       const std::vector<std::vector<Candidate>>& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t q = 0; q < expected.size(); ++q) {
    ASSERT_EQ(expected[q].size(), actual[q].size())
        << context << " probe " << q;
    for (size_t i = 0; i < expected[q].size(); ++i) {
      EXPECT_EQ(expected[q][i].id, actual[q][i].id)
          << context << " probe " << q << " position " << i;
      EXPECT_EQ(expected[q][i].overlap, actual[q][i].overlap)
          << context << " probe " << q << " position " << i;
    }
  }
}

void RunCandidateStreamDifferential(const Predicate& pred,
                                    const std::string& name) {
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RecordSet records = testing_util::MakeRandomRecordSet(
        {.num_records = 150, .vocabulary = 70}, 500 + seed);
    pred.Prepare(&records);
    const std::string tag = name + " seed=" + std::to_string(seed);
    MergeStats scalar_stats;
    std::vector<std::vector<Candidate>> reference =
        CollectCandidateStreams(records, pred, 0, &scalar_stats);
    EXPECT_EQ(scalar_stats.bitmap_pruned, 0u) << tag;
    for (size_t words = 1; words <= kTokenBitmapWords; ++words) {
      MergeStats gated_stats;
      ExpectSameStreams(
          reference,
          CollectCandidateStreams(records, pred, words, &gated_stats),
          tag + " words=" + std::to_string(words));
      // The gate only drops candidates the final bound check would have
      // dropped, so the emitted-candidate counter cannot move.
      EXPECT_EQ(gated_stats.candidates, scalar_stats.candidates)
          << tag << " words=" << words;
    }
  }
}

TEST(BitmapCandidateStreamTest, OverlapBitIdentical) {
  OverlapPredicate pred(4);
  RunCandidateStreamDifferential(pred, "overlap");
}

TEST(BitmapCandidateStreamTest, JaccardBitIdentical) {
  JaccardPredicate pred(0.5);
  RunCandidateStreamDifferential(pred, "jaccard");
}

TEST(BitmapCandidateStreamTest, DiceBitIdentical) {
  DicePredicate pred(0.6);
  RunCandidateStreamDifferential(pred, "dice");
}

TEST(BitmapCandidateStreamTest, CosineBitIdentical) {
  CosinePredicate pred(0.6);
  RunCandidateStreamDifferential(pred, "cosine");
}

// ---------------------------------------------------------------------
// Join-level byte-identity: ProbeJoin pairs with the filter on equal the
// scalar baseline across probe modes and predicates.

std::vector<std::pair<RecordId, RecordId>> RunProbeJoin(
    const RecordSet& prepared, const Predicate& pred,
    ProbeJoinOptions options, JoinStats* stats) {
  std::vector<std::pair<RecordId, RecordId>> pairs;
  Result<JoinStats> result =
      ProbeJoin(prepared, pred, options,
                [&](RecordId a, RecordId b) { pairs.emplace_back(a, b); });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && stats != nullptr) *stats = result.value();
  return testing_util::SortedPairs(std::move(pairs));
}

void RunJoinDifferential(const Predicate& pred, const std::string& name,
                         bool try_stopwords) {
  struct Mode {
    const char* tag;
    ProbeJoinOptions options;
  };
  std::vector<Mode> modes = {
      {"online", {}},
      {"two-pass", {.online = false}},
      {"presort", {.presort = true}},
  };
  if (try_stopwords) {
    modes.push_back({"stopwords", {.stopwords = true}});
    modes.push_back({"stopwords-presort", {.presort = true,
                                           .stopwords = true}});
  }
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RecordSet records = testing_util::MakeRandomRecordSet(
        {.num_records = 130, .vocabulary = 60}, 9000 + seed);
    pred.Prepare(&records);
    for (const Mode& mode : modes) {
      const std::string tag = name + " seed=" + std::to_string(seed) +
                              " mode=" + mode.tag;
      JoinStats baseline_stats;
      std::vector<std::pair<RecordId, RecordId>> baseline =
          RunProbeJoin(records, pred, mode.options, &baseline_stats);
      ProbeJoinOptions gated = mode.options;
      gated.bitmap_filter = true;
      JoinStats gated_stats;
      EXPECT_EQ(baseline, RunProbeJoin(records, pred, gated, &gated_stats))
          << tag;
      EXPECT_EQ(gated_stats.pairs, baseline_stats.pairs) << tag;
      // The emit-level gate can only ever shrink the verified set.
      EXPECT_LE(gated_stats.candidates_verified,
                baseline_stats.candidates_verified)
          << tag;
      EXPECT_EQ(baseline_stats.merge.bitmap_pruned, 0u) << tag;
    }
  }
}

TEST(BitmapJoinDifferentialTest, Overlap) {
  OverlapPredicate pred(4);
  RunJoinDifferential(pred, "overlap", /*try_stopwords=*/true);
}

TEST(BitmapJoinDifferentialTest, Jaccard) {
  JaccardPredicate pred(0.5);
  RunJoinDifferential(pred, "jaccard", /*try_stopwords=*/false);
}

TEST(BitmapJoinDifferentialTest, Dice) {
  DicePredicate pred(0.6);
  RunJoinDifferential(pred, "dice", /*try_stopwords=*/false);
}

TEST(BitmapJoinDifferentialTest, Cosine) {
  CosinePredicate pred(0.6);
  RunJoinDifferential(pred, "cosine", /*try_stopwords=*/true);
}

// ---------------------------------------------------------------------
// SIMD lower-bound parity: whatever backend dispatch picked, positions
// must equal the scalar galloping primitive's on randomized lists and
// adversarial starts. Under SSJOIN_FORCE_SCALAR=1 ActiveMergeBackend()
// must report "scalar".

TEST(MergeLowerBoundTest, BackendMatchesScalarPositions) {
  const char* forced = std::getenv("SSJOIN_FORCE_SCALAR");
  if (forced != nullptr && forced[0] != '\0' &&
      !(forced[0] == '0' && forced[1] == '\0')) {
    EXPECT_STREQ(ActiveMergeBackend(), "scalar");
  }
  for (int seed = 0; seed < SeedCount(); ++seed) {
    Rng rng(31 + seed);
    for (int trial = 0; trial < 60; ++trial) {
      PostingList list;
      uint32_t id = rng.UniformU32(4);
      const int n = rng.UniformInt(0, 400);
      for (int i = 0; i < n; ++i) {
        id += 1 + rng.UniformU32(5);
        list.Append(id, 0.25 + rng.NextDouble());
      }
      const PostingListView view = list.view();
      for (int probe = 0; probe < 80; ++probe) {
        const RecordId target = rng.UniformU32(id + 10);
        const size_t start =
            rng.UniformU32(static_cast<uint32_t>(view.size()) + 2);
        uint64_t unused = 0;
        EXPECT_EQ(MergeLowerBound(view, target, start, &unused),
                  view.GallopLowerBound(target, start))
            << "seed " << seed << " trial " << trial << " target " << target
            << " start " << start << " backend " << ActiveMergeBackend();
      }
      // Large-id regression: ids above INT32_MAX exercise the unsigned-
      // compare bias of the vector path.
      PostingList big;
      big.Append(5, 1.0);
      big.Append(0x7FFFFFFFu, 1.0);
      big.Append(0x80000001u, 1.0);
      big.Append(0xFFFFFFF0u, 1.0);
      for (RecordId t : {RecordId{0}, RecordId{6}, RecordId{0x7FFFFFFFu},
                         RecordId{0x80000000u}, RecordId{0x80000001u},
                         RecordId{0xFFFFFFF0u}, RecordId{0xFFFFFFFFu}}) {
        uint64_t unused = 0;
        EXPECT_EQ(MergeLowerBound(big.view(), t, 0, &unused),
                  big.view().GallopLowerBound(t, 0))
            << "big-id target " << t;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Serving tier: byte-identical answers across every bitmap width, and
// counter movement.

TEST(BitmapServeDifferentialTest, AnswersIdenticalAcrossBitmapWidths) {
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RecordSet corpus = testing_util::MakeRandomRecordSet(
        {.num_records = 110, .vocabulary = 60}, 4200 + seed);
    JaccardPredicate pred(0.5);
    std::vector<std::unique_ptr<SimilarityService>> services;
    for (size_t bits : {256, 0, 64, 128, 192}) {
      ServiceOptions options;
      options.bitmap_bits = bits;
      options.num_shards = bits == 64 ? 3 : 1;  // one sharded rider
      services.push_back(
          std::make_unique<SimilarityService>(corpus, pred, options));
    }
    for (RecordId r = 0; r < corpus.size(); ++r) {
      std::vector<QueryMatch> reference =
          services[0]->Query(corpus.record(r), corpus.text(r));
      std::vector<QueryMatch> topk_reference =
          services[0]->QueryTopK(corpus.record(r), 6, corpus.text(r));
      for (size_t i = 1; i < services.size(); ++i) {
        const std::string tag = "seed=" + std::to_string(seed) +
                                " record=" + std::to_string(r) +
                                " service=" + std::to_string(i);
        std::vector<QueryMatch> got =
            services[i]->Query(corpus.record(r), corpus.text(r));
        ASSERT_EQ(reference.size(), got.size()) << tag;
        for (size_t m = 0; m < reference.size(); ++m) {
          EXPECT_EQ(reference[m].id, got[m].id) << tag;
          EXPECT_EQ(reference[m].score, got[m].score) << tag;
        }
        std::vector<QueryMatch> topk =
            services[i]->QueryTopK(corpus.record(r), 6, corpus.text(r));
        ASSERT_EQ(topk_reference.size(), topk.size()) << tag;
        for (size_t m = 0; m < topk_reference.size(); ++m) {
          EXPECT_EQ(topk_reference[m].id, topk[m].id) << tag;
          EXPECT_EQ(topk_reference[m].score, topk[m].score) << tag;
        }
      }
    }
  }
}

TEST(BitmapServeCounterTest, PrunedCounterMovesExactlyWhenEnabled) {
  // A workload with large lists (low threshold-to-size ratio puts lists
  // in L) and many near-miss candidates: the gate must fire.
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 400, .vocabulary = 50, .min_tokens = 6,
       .max_tokens = 14},
      606);
  OverlapPredicate pred(5);

  ServiceOptions on;
  on.bitmap_bits = 256;
  SimilarityService gated(corpus, pred, on);
  for (RecordId r = 0; r < corpus.size(); ++r) {
    gated.Query(corpus.record(r), corpus.text(r));
  }
  EXPECT_GT(gated.stats().merge.bitmap_pruned, 0u)
      << "gate never fired on a pruning workload";
  EXPECT_GE(gated.stats().merge.bitmap_checked,
            gated.stats().merge.bitmap_pruned)
      << "every prune implies a consult";
  const std::string json = gated.StatsJson();
  EXPECT_NE(json.find("\"candidates_bitmap_checked\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"candidates_bitmap_pruned\""), std::string::npos)
      << json;

  ServiceOptions off;
  off.bitmap_bits = 0;
  SimilarityService ungated(corpus, pred, off);
  for (RecordId r = 0; r < corpus.size(); ++r) {
    ungated.Query(corpus.record(r), corpus.text(r));
  }
  EXPECT_EQ(ungated.stats().merge.bitmap_pruned, 0u);
  // The gate never touches what gets emitted, so the candidate counter
  // agrees between the two services.
  EXPECT_EQ(gated.stats().candidates, ungated.stats().candidates);
  EXPECT_EQ(gated.stats().results, ungated.stats().results);
}

}  // namespace
}  // namespace ssjoin
