#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "data/record.h"
#include "data/record_set.h"
#include "data/record_view.h"

namespace ssjoin {
namespace {

TEST(RecordViewTest, IsTriviallyCopyable) {
  static_assert(std::is_trivially_copyable_v<RecordView>);
  static_assert(std::is_trivially_destructible_v<RecordView>);
}

TEST(RecordViewTest, EmptyRecord) {
  RecordView view;
  EXPECT_EQ(view.size(), 0u);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.Find(0), SIZE_MAX);
  EXPECT_EQ(view.Find(123), SIZE_MAX);
  EXPECT_FALSE(view.Contains(0));
  EXPECT_DOUBLE_EQ(view.norm(), 0.0);
  EXPECT_EQ(view.text_length(), 0u);
  EXPECT_TRUE(view.tokens().empty());
  EXPECT_TRUE(view.scores().empty());
  EXPECT_DOUBLE_EQ(view.OverlapWith(view), 0.0);
  EXPECT_EQ(view.IntersectionSize(view), 0u);
}

TEST(RecordViewTest, EmptyRecordInArena) {
  RecordSet set;
  set.Add(Record::FromTokens({}), "");
  const RecordView view = set.record(0);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.Find(7), SIZE_MAX);
  EXPECT_FALSE(view.Contains(7));
}

TEST(RecordViewTest, SingleTokenRecord) {
  Record r = Record::FromWeightedTokens({{42, 1.5}});
  r.set_norm(1.5);
  r.set_text_length(9);
  const RecordView view = r.view();
  EXPECT_EQ(view.size(), 1u);
  EXPECT_FALSE(view.empty());
  EXPECT_EQ(view.Find(42), 0u);
  EXPECT_TRUE(view.Contains(42));
  EXPECT_EQ(view.Find(41), SIZE_MAX);
  EXPECT_EQ(view.Find(43), SIZE_MAX);
  EXPECT_FALSE(view.Contains(0));
  EXPECT_DOUBLE_EQ(view.norm(), 1.5);
  EXPECT_EQ(view.text_length(), 9u);
  EXPECT_DOUBLE_EQ(view.score(0), 1.5);
  EXPECT_DOUBLE_EQ(view.OverlapWith(view), 1.5 * 1.5);
  EXPECT_EQ(view.IntersectionSize(view), 1u);
}

TEST(RecordViewTest, FindOnLargeRecordHitsEveryToken) {
  // A record at the practical size ceiling: every even token up to a
  // large vocabulary; Find must locate each member and reject each gap.
  constexpr uint32_t kMaxTokens = 1u << 16;
  std::vector<std::pair<TokenId, double>> weighted;
  weighted.reserve(kMaxTokens);
  for (uint32_t i = 0; i < kMaxTokens; ++i) {
    weighted.push_back({2 * i, 1.0 + i * 1e-5});
  }
  Record r = Record::FromWeightedTokens(std::move(weighted));
  const RecordView view = r.view();
  ASSERT_EQ(view.size(), kMaxTokens);
  for (uint32_t i = 0; i < kMaxTokens; i += 997) {
    EXPECT_EQ(view.Find(2 * i), i);
    EXPECT_TRUE(view.Contains(2 * i));
    EXPECT_EQ(view.Find(2 * i + 1), SIZE_MAX);
  }
  EXPECT_EQ(view.Find(2 * kMaxTokens), SIZE_MAX);
  EXPECT_EQ(view.IntersectionSize(view), kMaxTokens);
}

TEST(RecordViewTest, ArenaViewsMatchSourceRecords) {
  // Views into the columnar arena must reproduce exactly what was Add()ed,
  // across records of different shapes (including an empty one between
  // non-empty neighbours, which exercises offset monotonicity).
  RecordSet set;
  Record a = Record::FromWeightedTokens({{1, 0.5}, {4, 2.0}, {9, 1.0}});
  a.set_norm(3.5);
  a.set_text_length(17);
  Record b;  // empty
  Record c = Record::FromWeightedTokens({{2, 1.0}});
  c.set_norm(1.0);
  set.Add(a, "a");
  set.Add(b, "");
  set.Add(c, "c");

  ASSERT_EQ(set.size(), 3u);
  const RecordView va = set.record(0);
  const RecordView vb = set.record(1);
  const RecordView vc = set.record(2);

  ASSERT_EQ(va.size(), 3u);
  EXPECT_EQ(va.token(0), 1u);
  EXPECT_EQ(va.token(1), 4u);
  EXPECT_EQ(va.token(2), 9u);
  EXPECT_DOUBLE_EQ(va.score(1), 2.0);
  EXPECT_DOUBLE_EQ(va.norm(), 3.5);
  EXPECT_EQ(va.text_length(), 17u);

  EXPECT_TRUE(vb.empty());

  ASSERT_EQ(vc.size(), 1u);
  EXPECT_EQ(vc.token(0), 2u);

  // Cross-record overlap through the arena: a and c share no token.
  EXPECT_DOUBLE_EQ(va.OverlapWith(vc), 0.0);
  EXPECT_EQ(va.IntersectionSize(vc), 0u);
}

TEST(RecordViewTest, OverlapWithMatchesManualSum) {
  Record a = Record::FromWeightedTokens({{1, 2.0}, {3, 1.0}, {5, 4.0}});
  Record b = Record::FromWeightedTokens({{2, 7.0}, {3, 3.0}, {5, 0.5}});
  EXPECT_DOUBLE_EQ(a.view().OverlapWith(b.view()), 1.0 * 3.0 + 4.0 * 0.5);
  EXPECT_EQ(a.view().IntersectionSize(b.view()), 2u);
}

TEST(RecordViewTest, RecordConvertsImplicitly) {
  // Record -> RecordView conversion (string -> string_view style).
  Record r = Record::FromTokens({3, 1, 3, 2});
  RecordView view = r;
  EXPECT_EQ(view.size(), 3u);  // duplicates collapsed
  EXPECT_TRUE(view.Contains(1));
  EXPECT_TRUE(view.Contains(2));
  EXPECT_TRUE(view.Contains(3));
}

}  // namespace
}  // namespace ssjoin
