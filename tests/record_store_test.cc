#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/record_store.h"
#include "test_util.h"

namespace ssjoin {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

template <typename T>
std::vector<T> ToVec(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

RecordSet MakeSet() {
  RecordSet set;
  Record a = Record::FromWeightedTokens({{1, 0.5}, {7, 2.25}});
  a.set_norm(2.75);
  a.set_text_length(11);
  set.Add(std::move(a), "first text!");
  Record b;  // empty record
  set.Add(std::move(b), "");
  Record c = Record::FromTokens({0, 1000000});
  c.set_norm(2);
  set.Add(std::move(c), "third");
  return set;
}

TEST(RecordSerializationTest, RoundTrip) {
  RecordSet set = MakeSet();
  std::string buffer;
  SerializeRecord(set.record(0), set.text(0), &buffer);
  size_t offset = 0;
  Record decoded;
  std::string text;
  ASSERT_TRUE(DeserializeRecord(buffer, &offset, &decoded, &text));
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(decoded.tokens(), ToVec(set.record(0).tokens()));
  EXPECT_EQ(decoded.scores(), ToVec(set.record(0).scores()));
  EXPECT_DOUBLE_EQ(decoded.norm(), set.record(0).norm());
  EXPECT_EQ(decoded.text_length(), set.record(0).text_length());
  EXPECT_EQ(text, "first text!");
}

TEST(RecordSerializationTest, NullTextSkipsCopy) {
  RecordSet set = MakeSet();
  std::string buffer;
  SerializeRecord(set.record(0), set.text(0), &buffer);
  size_t offset = 0;
  Record decoded;
  ASSERT_TRUE(DeserializeRecord(buffer, &offset, &decoded, nullptr));
  EXPECT_EQ(offset, buffer.size());
}

TEST(RecordSerializationTest, RejectsTruncation) {
  RecordSet set = MakeSet();
  std::string buffer;
  SerializeRecord(set.record(0), set.text(0), &buffer);
  for (size_t cut = 1; cut < buffer.size(); cut += 3) {
    std::string truncated = buffer.substr(0, buffer.size() - cut);
    size_t offset = 0;
    Record decoded;
    std::string text;
    EXPECT_FALSE(DeserializeRecord(truncated, &offset, &decoded, &text))
        << "cut=" << cut;
  }
}

TEST(RecordStoreTest, CreateAndFetch) {
  RecordSet set = MakeSet();
  std::string path = TempPath("store_create.dat");
  Result<RecordStore> store = RecordStore::Create(path, set);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value().size(), set.size());

  for (RecordId id = 0; id < set.size(); ++id) {
    Record record;
    std::string text;
    ASSERT_TRUE(store.value().Fetch(id, &record, &text).ok());
    EXPECT_EQ(record.tokens(), ToVec(set.record(id).tokens()));
    EXPECT_EQ(text, set.text(id));
  }
}

TEST(RecordStoreTest, OpenRebuildsOffsets) {
  RecordSet set = MakeSet();
  std::string path = TempPath("store_open.dat");
  ASSERT_TRUE(RecordStore::Create(path, set).ok());

  Result<RecordStore> reopened = RecordStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().size(), set.size());
  Record record;
  std::string text;
  ASSERT_TRUE(reopened.value().Fetch(2, &record, &text).ok());
  EXPECT_EQ(text, "third");
}

TEST(RecordStoreTest, FetchOutOfRange) {
  RecordSet set = MakeSet();
  std::string path = TempPath("store_range.dat");
  Result<RecordStore> store = RecordStore::Create(path, set);
  ASSERT_TRUE(store.ok());
  Record record;
  EXPECT_EQ(store.value().Fetch(99, &record, nullptr).code(),
            StatusCode::kOutOfRange);
}

TEST(RecordStoreTest, OpenMissingFile) {
  Result<RecordStore> store = RecordStore::Open(TempPath("nonexistent.dat"));
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError);
}

TEST(RecordStoreTest, OpenRejectsBadMagic) {
  std::string path = TempPath("store_badmagic.dat");
  std::ofstream(path) << "not a record store";
  Result<RecordStore> store = RecordStore::Open(path);
  EXPECT_FALSE(store.ok());
}

TEST(RecordStoreTest, LargeRandomSetRoundTrips) {
  RecordSet set =
      testing_util::MakeRandomRecordSet({.num_records = 300}, 42);
  std::string path = TempPath("store_large.dat");
  Result<RecordStore> store = RecordStore::Create(path, set);
  ASSERT_TRUE(store.ok());
  for (RecordId id = 0; id < set.size(); id += 17) {
    Record record;
    std::string text;
    ASSERT_TRUE(store.value().Fetch(id, &record, &text).ok());
    EXPECT_EQ(record.tokens(), ToVec(set.record(id).tokens()));
    EXPECT_EQ(text, set.text(id));
  }
}

}  // namespace
}  // namespace ssjoin
