// Loopback integration tests for the network front door: an in-process
// SimilarityServer driven over real 127.0.0.1 sockets. The acceptance
// bar is byte-identity — every OK payload must be the exact byte
// sequence a directly-driven ServiceDispatcher produces for the same
// command — across shard counts, with pipelining, and under concurrent
// clients. Also covered: ordered pipelined responses, graceful
// shutdown, idle-timeout reaping, the oversize-request guard, ERR
// parity with the REPL, and the net counters. The concurrent tests
// double as the TSan stress run (tools/run_tsan_tests.sh).

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/jaccard_predicate.h"
#include "data/corpus_builder.h"
#include "net/wire.h"
#include "serve/protocol.h"
#include "serve/similarity_service.h"
#include "text/token_dictionary.h"

namespace ssjoin {
namespace {

std::vector<std::string> CorpusLines() {
  return {
      "efficient set joins on similarity predicates",
      "efficient set joins with similarity predicates",
      "an unrelated record about inverted indexes",
      "set joins on similarity predicates",
      "totally different text entirely",
      "another record about probe clusters and joins",
      "band partitions for weighted overlap joins",
      "tokenizing text into words and grams",
  };
}

/// Blocking loopback client with a receive timeout so a server bug
/// fails the test instead of hanging it.
class LoopbackClient {
 public:
  explicit LoopbackClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd_, 0);
    if (fd_ < 0) return;
    struct timeval timeout = {10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LoopbackClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      ASSERT_GT(n, 0) << "write failed mid-request";
      off += static_cast<size_t>(n);
    }
  }

  /// Reads until `count` responses decode (fails the test on timeout,
  /// EOF, or a framing violation).
  std::vector<net::WireResponse> Read(size_t count) {
    std::vector<net::WireResponse> responses;
    while (responses.size() < count) {
      char buffer[65536];
      ssize_t n = ::read(fd_, buffer, sizeof(buffer));
      EXPECT_GT(n, 0) << "connection closed or timed out mid-response";
      if (n <= 0) break;
      EXPECT_TRUE(reader_.Feed(
          std::string_view(buffer, static_cast<size_t>(n)), &responses));
    }
    return responses;
  }

  /// True if the server closes the connection (EOF) within the receive
  /// timeout; drains and ignores any bytes sent before the close.
  bool ReadEof() {
    while (true) {
      char buffer[4096];
      ssize_t n = ::read(fd_, buffer, sizeof(buffer));
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  net::ResponseReader* reader() { return &reader_; }

 private:
  int fd_ = -1;
  bool connected_ = false;
  net::ResponseReader reader_;
};

/// An in-process server over a fresh service, plus the directly-driven
/// twin the network answers are compared against byte for byte.
class ServerFixture {
 public:
  explicit ServerFixture(size_t num_shards,
                         net::ServerOptions net_options = {}) {
    ServiceOptions service_options;
    service_options.num_shards = num_shards;
    service_ = std::make_unique<SimilarityService>(
        BuildWordCorpus(CorpusLines(), &dict_), pred_, service_options);
    server_ = std::make_unique<net::SimilarityServer>(
        service_.get(),
        [this](const std::vector<std::string>& lines) {
          std::lock_guard<std::mutex> lock(tokenize_mutex_);
          return BuildWordCorpus(lines, &dict_);
        },
        /*before_insert=*/nullptr, net_options);
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_NE(server_->port(), 0);
  }

  uint16_t port() const { return server_->port(); }
  net::SimilarityServer* server() { return server_.get(); }
  SimilarityService* service() { return service_.get(); }

  /// Waits until the server has reaped every closed connection.
  void WaitForActiveConnections(uint64_t want) {
    for (int i = 0; i < 500; ++i) {
      if (server_->net_stats().active_connections == want) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server_->net_stats().active_connections, want);
  }

 private:
  TokenDictionary dict_;
  std::mutex tokenize_mutex_;
  JaccardPredicate pred_{0.5};
  std::unique_ptr<SimilarityService> service_;
  std::unique_ptr<net::SimilarityServer> server_;
};

/// The directly-driven twin: same corpus, its own dictionary and
/// service, commands executed one at a time exactly as the REPL would.
class Twin {
 public:
  Twin() {
    ServiceOptions options;  // shard count is answer-invariant
    service_ = std::make_unique<SimilarityService>(
        BuildWordCorpus(CorpusLines(), &dict_), pred_, options);
    dispatcher_ = std::make_unique<ServiceDispatcher>(
        service_.get(), [this](const std::vector<std::string>& lines) {
          return BuildWordCorpus(lines, &dict_);
        });
  }

  Response Run(const std::string& line) {
    return dispatcher_->Execute(ParseRequest(line));
  }

 private:
  TokenDictionary dict_;
  JaccardPredicate pred_{0.5};
  std::unique_ptr<SimilarityService> service_;
  std::unique_ptr<ServiceDispatcher> dispatcher_;
};

/// The mutation schedule both sides run: queries (runs of >= 2 ride the
/// batch path over the network), inserts, deletes (one hit, one miss,
/// one malformed), top-k, compaction.
std::vector<std::string> MutationSchedule() {
  return {
      "efficient set joins on similarity predicates",
      "set joins on similarity predicates",
      "band partitions for weighted overlap joins",
      "+ a new record about efficient joins",
      "a new record about efficient joins",
      "- 1",
      "efficient set joins on similarity predicates",
      "?k 3 set joins on similarity predicates",
      "! compact",
      "efficient set joins with similarity predicates",
      "- 999999",
      "- bogus",
      "+ another record inserted over the wire",
      "another record inserted over the wire",
  };
}

// -------------------------------------------------------------------

TEST(NetLoopbackTest, PipelinedScheduleIsByteIdenticalAcrossShards) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ServerFixture fx(shards);
    LoopbackClient client(fx.port());
    ASSERT_TRUE(client.connected());

    // The whole schedule in ONE write: the server sees it as a
    // pipelined burst and must answer in order.
    std::vector<std::string> schedule = MutationSchedule();
    std::string burst;
    for (const std::string& line : schedule) burst += line + "\n";
    client.Send(burst);
    std::vector<net::WireResponse> responses = client.Read(schedule.size());
    ASSERT_EQ(responses.size(), schedule.size());

    Twin twin;
    for (size_t i = 0; i < schedule.size(); ++i) {
      Response expected = twin.Run(schedule[i]);
      EXPECT_EQ(responses[i].ok, expected.ok) << schedule[i];
      EXPECT_EQ(responses[i].payload, expected.payload) << schedule[i];
    }
  }
}

TEST(NetLoopbackTest, StatsCarriesTheNetSection) {
  ServerFixture fx(2);
  LoopbackClient client(fx.port());
  ASSERT_TRUE(client.connected());
  client.Send("? stats\n");
  std::vector<net::WireResponse> responses = client.Read(1);
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].ok);
  EXPECT_NE(responses[0].payload.find("\"point_queries\""),
            std::string::npos);
  for (const char* counter :
       {"\"net\"", "\"connections_accepted\"", "\"active_connections\"",
        "\"requests\"", "\"protocol_errors\""}) {
    EXPECT_NE(responses[0].payload.find(counter), std::string::npos)
        << counter;
  }
}

TEST(NetLoopbackTest, ErrStringsMatchTheReplAndKeepTheConnectionOpen) {
  ServerFixture fx(1);
  LoopbackClient client(fx.port());
  ASSERT_TRUE(client.connected());
  client.Send("- xyz\n");
  std::vector<net::WireResponse> responses = client.Read(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].payload,
            "malformed delete '- xyz' (want '- <id>')");
  // A protocol-level (not framing-level) error is recoverable: the next
  // command still answers.
  client.Send("? stats\n");
  responses = client.Read(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_GE(fx.server()->net_stats().protocol_errors, 1u);
}

TEST(NetLoopbackTest, ConcurrentPipelinedClientsSeeIdenticalAnswers) {
  ServerFixture fx(2);
  // Expected answers computed in-process BEFORE the clients run;
  // queries mutate nothing, so they stay valid throughout.
  std::vector<std::string> queries = CorpusLines();
  Twin twin;
  std::vector<std::string> expected;
  for (const std::string& q : queries) {
    Response r = twin.Run(q);
    ASSERT_TRUE(r.ok);
    expected.push_back(r.payload);
  }

  constexpr int kClients = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LoopbackClient client(fx.port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // Rotate the starting query per client so the batches differ.
        std::string burst;
        for (size_t q = 0; q < queries.size(); ++q) {
          burst += queries[(q + c) % queries.size()] + "\n";
        }
        client.Send(burst);
        std::vector<net::WireResponse> responses =
            client.Read(queries.size());
        if (responses.size() != queries.size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t q = 0; q < queries.size(); ++q) {
          if (!responses[q].ok ||
              responses[q].payload != expected[(q + c) % queries.size()]) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(fx.server()->net_stats().requests,
            static_cast<uint64_t>(kClients) * kRounds * queries.size());
}

// The TSan stress: pipelined query clients racing a writer connection
// that inserts and deletes through the same front door. Answers may
// change under their feet; the invariants are framing integrity,
// per-connection ordering (the writer's own inserts/deletes must all
// acknowledge) and no data races.
TEST(NetLoopbackTest, QueriesRaceAWriterWithoutTearing) {
  ServerFixture fx(2);
  constexpr int kReaders = 4;
  constexpr int kRounds = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kReaders; ++c) {
    threads.emplace_back([&] {
      LoopbackClient client(fx.port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<std::string> queries = CorpusLines();
      for (int round = 0; round < kRounds; ++round) {
        std::string burst;
        for (const std::string& q : queries) burst += q + "\n";
        client.Send(burst);
        std::vector<net::WireResponse> responses =
            client.Read(queries.size());
        if (responses.size() != queries.size()) {
          failures.fetch_add(1);
          return;
        }
        for (const net::WireResponse& r : responses) {
          if (!r.ok) failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    LoopbackClient writer(fx.port());
    if (!writer.connected()) {
      failures.fetch_add(1);
      return;
    }
    for (int round = 0; round < kRounds; ++round) {
      std::string burst;
      for (int i = 0; i < 4; ++i) {
        burst += "+ transient record number " + std::to_string(round) +
                 " " + std::to_string(i) + "\n";
      }
      writer.Send(burst);
      std::vector<net::WireResponse> acks = writer.Read(4);
      if (acks.size() != 4) {
        failures.fetch_add(1);
        return;
      }
      std::string deletes;
      for (const net::WireResponse& ack : acks) {
        if (!ack.ok || ack.payload.rfind("inserted ", 0) != 0) {
          failures.fetch_add(1);
          return;
        }
        // "inserted <id>\n" -> "- <id>\n"
        deletes += "- " + ack.payload.substr(9, ack.payload.size() - 10) +
                   "\n";
      }
      if (round % 5 == 4) deletes += "! compact\n";
      writer.Send(deletes);
      std::vector<net::WireResponse> dels =
          writer.Read(round % 5 == 4 ? 5 : 4);
      for (const net::WireResponse& del : dels) {
        if (!del.ok) failures.fetch_add(1);
      }
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(NetLoopbackTest, ShutdownDrainsThenClosesConnections) {
  ServerFixture fx(1);
  LoopbackClient client(fx.port());
  ASSERT_TRUE(client.connected());
  client.Send("efficient set joins on similarity predicates\n");
  std::vector<net::WireResponse> responses = client.Read(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok);

  fx.server()->Shutdown();
  // The drained connection is closed from the server side...
  EXPECT_TRUE(client.ReadEof());
  // ...and the listener no longer accepts.
  LoopbackClient late(fx.port());
  if (late.connected()) {
    EXPECT_TRUE(late.ReadEof());
  }
  EXPECT_EQ(fx.server()->net_stats().active_connections, 0u);
}

TEST(NetLoopbackTest, IdleConnectionsAreReaped) {
  net::ServerOptions options;
  options.idle_timeout_ms = 50;
  ServerFixture fx(1, options);
  LoopbackClient client(fx.port());
  ASSERT_TRUE(client.connected());
  // Never send a byte: the reaper must close us.
  EXPECT_TRUE(client.ReadEof());
  fx.WaitForActiveConnections(0);
  EXPECT_GE(fx.server()->net_stats().idle_closes, 1u);
}

TEST(NetLoopbackTest, OversizeRequestGetsOneErrThenClose) {
  net::ServerOptions options;
  options.max_request_bytes = 64;
  ServerFixture fx(1, options);
  LoopbackClient client(fx.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string(200, 'a'));  // no newline: an unbounded line
  std::vector<net::WireResponse> responses = client.Read(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_NE(responses[0].payload.find("exceeds"), std::string::npos);
  EXPECT_TRUE(client.ReadEof());
  fx.WaitForActiveConnections(0);
  EXPECT_GE(fx.server()->net_stats().protocol_errors, 1u);
}

TEST(NetLoopbackTest, CountersTrackConnectionsAndRequests) {
  ServerFixture fx(1);
  {
    LoopbackClient first(fx.port());
    ASSERT_TRUE(first.connected());
    first.Send("? stats\nefficient set joins on similarity predicates\n");
    EXPECT_EQ(first.Read(2).size(), 2u);
  }
  {
    LoopbackClient second(fx.port());
    ASSERT_TRUE(second.connected());
    second.Send("totally different text entirely\n");
    EXPECT_EQ(second.Read(1).size(), 1u);
  }
  fx.WaitForActiveConnections(0);
  NetStats stats = fx.server()->net_stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_GE(stats.requests, 3u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
}

}  // namespace
}  // namespace ssjoin
