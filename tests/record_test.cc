#include <gtest/gtest.h>

#include "data/record.h"
#include "data/record_set.h"

namespace ssjoin {
namespace {

TEST(RecordTest, FromTokensSortsAndDedups) {
  Record r = Record::FromTokens({5, 1, 3, 1, 5, 5});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.token(0), 1u);
  EXPECT_EQ(r.token(1), 3u);
  EXPECT_EQ(r.token(2), 5u);
  for (size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r.score(i), 1.0);
}

TEST(RecordTest, FromWeightedTokensSorts) {
  Record r = Record::FromWeightedTokens({{9, 0.5}, {2, 2.0}, {4, 1.5}});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.token(0), 2u);
  EXPECT_EQ(r.score(0), 2.0);
  EXPECT_EQ(r.token(2), 9u);
  EXPECT_EQ(r.score(2), 0.5);
}

TEST(RecordTest, FindAndContains) {
  Record r = Record::FromTokens({2, 4, 8});
  EXPECT_EQ(r.Find(4), 1u);
  EXPECT_EQ(r.Find(5), SIZE_MAX);
  EXPECT_TRUE(r.Contains(8));
  EXPECT_FALSE(r.Contains(1));
  EXPECT_FALSE(r.Contains(100));
}

TEST(RecordTest, OverlapWithSumsProducts) {
  Record a = Record::FromWeightedTokens({{1, 2.0}, {2, 3.0}, {5, 1.0}});
  Record b = Record::FromWeightedTokens({{2, 4.0}, {5, 2.0}, {7, 9.0}});
  EXPECT_DOUBLE_EQ(a.OverlapWith(b), 3.0 * 4.0 + 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(b.OverlapWith(a), a.OverlapWith(b));
}

TEST(RecordTest, OverlapWithDisjoint) {
  Record a = Record::FromTokens({1, 2});
  Record b = Record::FromTokens({3, 4});
  EXPECT_DOUBLE_EQ(a.OverlapWith(b), 0.0);
  Record empty;
  EXPECT_DOUBLE_EQ(a.OverlapWith(empty), 0.0);
}

TEST(RecordTest, IntersectionSize) {
  Record a = Record::FromTokens({1, 2, 3, 4});
  Record b = Record::FromTokens({2, 4, 6});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(a.IntersectionSize(a), 4u);
}

TEST(RecordTest, UnionMaxTakesMaxScores) {
  Record a = Record::FromWeightedTokens({{1, 2.0}, {3, 1.0}});
  a.set_norm(5.0);
  a.set_text_length(10);
  Record b = Record::FromWeightedTokens({{1, 1.0}, {2, 4.0}, {3, 3.0}});
  b.set_norm(3.0);
  b.set_text_length(20);
  Record u = Record::UnionMax(a, b);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u.token(0), 1u);
  EXPECT_DOUBLE_EQ(u.score(0), 2.0);  // max(2, 1)
  EXPECT_EQ(u.token(1), 2u);
  EXPECT_DOUBLE_EQ(u.score(1), 4.0);
  EXPECT_DOUBLE_EQ(u.score(2), 3.0);  // max(1, 3)
  EXPECT_DOUBLE_EQ(u.norm(), 3.0);    // min member norm
  EXPECT_EQ(u.text_length(), 10u);    // min text length
}

TEST(RecordTest, UnionMaxSupersetInvariant) {
  // overlap(probe, UnionMax(a, b)) >= max(overlap(probe, a),
  // overlap(probe, b)) — the property that makes J(r) a safe superset.
  Record a = Record::FromWeightedTokens({{1, 2.0}, {4, 1.0}, {6, 3.0}});
  Record b = Record::FromWeightedTokens({{2, 5.0}, {4, 2.0}});
  Record probe = Record::FromWeightedTokens({{1, 1.0}, {2, 1.0}, {4, 1.0}});
  Record u = Record::UnionMax(a, b);
  EXPECT_GE(probe.OverlapWith(u), probe.OverlapWith(a));
  EXPECT_GE(probe.OverlapWith(u), probe.OverlapWith(b));
}

TEST(RecordSetTest, TracksFrequencies) {
  RecordSet set;
  set.Add(Record::FromTokens({1, 2}));
  set.Add(Record::FromTokens({2, 3}));
  set.Add(Record::FromTokens({2}));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.doc_frequency(2), 3u);
  EXPECT_EQ(set.doc_frequency(1), 1u);
  EXPECT_EQ(set.doc_frequency(99), 0u);
  EXPECT_EQ(set.total_token_occurrences(), 5u);
  EXPECT_DOUBLE_EQ(set.average_record_size(), 5.0 / 3.0);
  EXPECT_EQ(set.vocabulary_size(), 4u);  // ids 0..3 allocated
}

TEST(RecordSetTest, KeepsText) {
  RecordSet set;
  RecordId id = set.Add(Record::FromTokens({1}), "hello world");
  EXPECT_EQ(set.text(id), "hello world");
}

TEST(RecordSetTest, IdsByDecreasingSize) {
  RecordSet set;
  set.Add(Record::FromTokens({1}));
  set.Add(Record::FromTokens({1, 2, 3}));
  set.Add(Record::FromTokens({1, 2}));
  std::vector<RecordId> order = set.IdsByDecreasingSize();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(RecordSetTest, IdsByDecreasingNormStableOnTies) {
  RecordSet set;
  for (int i = 0; i < 4; ++i) {
    Record r = Record::FromTokens({static_cast<TokenId>(i)});
    r.set_norm(1.0);
    set.Add(std::move(r));
  }
  std::vector<RecordId> order = set.IdsByDecreasingNorm();
  EXPECT_EQ(order, (std::vector<RecordId>{0, 1, 2, 3}));
}

TEST(RecordSetTest, EmptySet) {
  RecordSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.average_record_size(), 0.0);
  EXPECT_TRUE(set.IdsByDecreasingSize().empty());
}

}  // namespace
}  // namespace ssjoin
