#include <string>

#include <gtest/gtest.h>

#include "data/record_set.h"
#include "text/normalizer.h"
#include "text/tfidf.h"
#include "text/token_dictionary.h"
#include "text/tokenizer.h"

namespace ssjoin {
namespace {

TEST(TokenDictionaryTest, InternIsStable) {
  TokenDictionary dict;
  TokenId a = dict.Intern("hello");
  TokenId b = dict.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("hello"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.ToString(a), "hello");
  EXPECT_EQ(dict.ToString(b), "world");
}

TEST(TokenDictionaryTest, LookupMissing) {
  TokenDictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Lookup("x"), 0u);
  EXPECT_EQ(dict.Lookup("y"), kInvalidToken);
}

TEST(TokenDictionaryTest, DenseIds) {
  TokenDictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Intern("tok" + std::to_string(i)),
              static_cast<TokenId>(i));
  }
}

TEST(NormalizerTest, DefaultPipeline) {
  Normalizer norm;
  EXPECT_EQ(norm.Normalize("  Hello,   World!  "), "hello world");
  EXPECT_EQ(norm.Normalize("A.B-C"), "a b c");
  EXPECT_EQ(norm.Normalize(""), "");
  EXPECT_EQ(norm.Normalize("...!!!"), "");
}

TEST(NormalizerTest, OptionsAreHonored) {
  NormalizerOptions opts;
  opts.lowercase = false;
  opts.strip_punctuation = false;
  opts.collapse_whitespace = false;
  Normalizer norm(opts);
  EXPECT_EQ(norm.Normalize("A.B  C"), "A.B  C");
}

TEST(WordTokenizerTest, DistinctTokensWithCounts) {
  TokenDictionary dict;
  WordTokenizer tok;
  auto pairs = tok.Tokenize("a b a c a", &dict);
  ASSERT_EQ(pairs.size(), 3u);
  // sorted by token id; "a" was interned first
  EXPECT_EQ(pairs[0].second, 3u);  // a appears 3 times
  EXPECT_EQ(pairs[1].second, 1u);
  EXPECT_EQ(pairs[2].second, 1u);
}

TEST(WordTokenizerTest, EmptyText) {
  TokenDictionary dict;
  WordTokenizer tok;
  EXPECT_TRUE(tok.Tokenize("", &dict).empty());
  EXPECT_TRUE(tok.Tokenize("   ", &dict).empty());
}

TEST(QGramTokenizerTest, PaddedGramCount) {
  TokenDictionary dict;
  QGramTokenizer tok(3);
  // "ab" padded to "$$ab$$": grams $$a $ab ab$ b$$ -> 4 distinct.
  auto pairs = tok.Tokenize("ab", &dict);
  size_t total = 0;
  for (const auto& [t, c] : pairs) total += c;
  EXPECT_EQ(total, 4u);  // len + q - 1 = 2 + 2
}

TEST(QGramTokenizerTest, RepeatedGramsCounted) {
  TokenDictionary dict;
  QGramTokenizer tok(2);
  // "aaa" padded "$aaa$": $a aa aa a$ -> "aa" has count 2.
  auto pairs = tok.Tokenize("aaa", &dict);
  uint32_t max_count = 0;
  size_t total = 0;
  for (const auto& [t, c] : pairs) {
    max_count = std::max(max_count, c);
    total += c;
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(max_count, 2u);
}

TEST(QGramTokenizerTest, EmptyString) {
  TokenDictionary dict;
  QGramTokenizer tok(3);
  // "" padded to "$$$$": grams $$$ $$$ -> one distinct gram, count 2.
  auto pairs = tok.Tokenize("", &dict);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, 2u);
}

TEST(QGramTokenizerTest, Q1HasNoPadding) {
  TokenDictionary dict;
  QGramTokenizer tok(1);
  auto pairs = tok.Tokenize("abca", &dict);
  EXPECT_EQ(pairs.size(), 3u);  // a, b, c
}

TEST(TfIdfTest, RareTokensWeighMore) {
  // 10 records; token 0 in all, token 1 in one.
  std::vector<uint64_t> freq = {10, 1};
  TfIdfWeighter weighter(freq, 10);
  EXPECT_GT(weighter.Weight(1, 1), weighter.Weight(0, 1));
}

TEST(TfIdfTest, TermFrequencyIncreasesWeight) {
  TfIdfWeighter weighter({5}, 10);
  EXPECT_GT(weighter.Weight(0, 4), weighter.Weight(0, 1));
}

TEST(TfIdfTest, UnseenTokenGetsMaxIdf) {
  TfIdfWeighter weighter({5}, 10);
  EXPECT_GT(weighter.Weight(42, 1), weighter.Weight(0, 1));
}

TEST(TfIdfTest, FromRecordSet) {
  RecordSet set;
  set.Add(Record::FromTokens({0, 1}));
  set.Add(Record::FromTokens({0}));
  TfIdfWeighter weighter = TfIdfWeighter::FromRecordSet(set);
  EXPECT_EQ(weighter.num_records(), 2u);
  EXPECT_GT(weighter.Weight(1, 1), weighter.Weight(0, 1));
}

}  // namespace
}  // namespace ssjoin
