#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/join.h"
#include "core/overlap_predicate.h"
#include "test_util.h"

namespace ssjoin {
namespace {

TEST(PairCountTest, AggregationBudgetAborts) {
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 100, .vocabulary = 20}, 3);
  OverlapPredicate pred(2);
  pred.Prepare(&set);
  PairCountOptions options;
  options.optimized = false;
  options.max_aggregated_pairs = 10;  // absurdly small on purpose
  Result<JoinStats> result =
      PairCountJoin(set, pred, options, [](RecordId, RecordId) {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(PairCountTest, OptimizedAggregatesFewerPairs) {
  // Skewed data: the hottest lists dominate pair generation; the
  // optimized variant must exclude them.
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 60, .zipf_exponent = 1.5}, 7);
  OverlapPredicate pred(4);
  pred.Prepare(&set);

  auto run = [&](bool optimized) {
    PairCountOptions options;
    options.optimized = optimized;
    Result<JoinStats> result =
        PairCountJoin(set, pred, options, [](RecordId, RecordId) {});
    EXPECT_TRUE(result.ok());
    return result.value();
  };
  JoinStats optimized = run(true);
  JoinStats baseline = run(false);
  EXPECT_EQ(optimized.pairs, baseline.pairs);
  EXPECT_LT(optimized.aggregated_pairs, baseline.aggregated_pairs);
}

TEST(PairCountTest, EmitsPairsSortedWithSmallerIdFirst) {
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 30}, 11);
  OverlapPredicate pred(3);
  pred.Prepare(&set);
  std::vector<std::pair<RecordId, RecordId>> pairs;
  PairCountOptions options;
  Result<JoinStats> result = PairCountJoin(
      set, pred, options,
      [&pairs](RecordId a, RecordId b) { pairs.emplace_back(a, b); });
  ASSERT_TRUE(result.ok());
  for (const auto& [a, b] : pairs) EXPECT_LT(a, b);
  // No duplicates.
  auto sorted = pairs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(PairCountTest, EmptyInput) {
  RecordSet set;
  OverlapPredicate pred(2);
  pred.Prepare(&set);
  Result<JoinStats> result =
      PairCountJoin(set, pred, {}, [](RecordId, RecordId) {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().pairs, 0u);
}

}  // namespace
}  // namespace ssjoin
