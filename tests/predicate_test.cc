#include <cmath>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_coefficient_predicate.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

RecordSet TwoRecords(std::vector<TokenId> a, std::vector<TokenId> b) {
  RecordSet set;
  set.Add(Record::FromTokens(std::move(a)));
  set.Add(Record::FromTokens(std::move(b)));
  return set;
}

TEST(OverlapPredicateTest, UnweightedCountsSharedTokens) {
  RecordSet set = TwoRecords({1, 2, 3, 4}, {2, 3, 4, 5});
  OverlapPredicate pred3(3);
  pred3.Prepare(&set);
  EXPECT_TRUE(pred3.Matches(set, 0, 1));  // 3 shared tokens
  OverlapPredicate pred4(4);
  pred4.Prepare(&set);
  EXPECT_FALSE(pred4.Matches(set, 0, 1));
}

TEST(OverlapPredicateTest, PrepareInstallsSqrtScoresAndWeightNorm) {
  RecordSet set = TwoRecords({0, 1}, {1});
  std::vector<double> weights = {4.0, 9.0};
  OverlapPredicate pred(5, weights);
  pred.Prepare(&set);
  EXPECT_DOUBLE_EQ(set.record(0).score(0), 2.0);  // sqrt(4)
  EXPECT_DOUBLE_EQ(set.record(0).score(1), 3.0);  // sqrt(9)
  EXPECT_DOUBLE_EQ(set.record(0).norm(), 13.0);   // 4 + 9
  // Shared token 1 contributes weight 9 >= 5.
  EXPECT_TRUE(pred.Matches(set, 0, 1));
}

TEST(OverlapPredicateTest, ConstantThresholdAndStaticWeights) {
  OverlapPredicate pred(7, {2.0, 3.0});
  EXPECT_EQ(pred.ConstantThreshold().value(), 7.0);
  EXPECT_TRUE(pred.has_static_weights());
  EXPECT_DOUBLE_EQ(pred.StaticTokenWeight(1), 3.0);
  EXPECT_DOUBLE_EQ(pred.StaticTokenWeight(99), 1.0);  // beyond vector
}

TEST(JaccardPredicateTest, MatchesDefinition) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = 2, .vocabulary = 20}, trial);
    for (double f : {0.3, 0.5, 0.8}) {
      JaccardPredicate pred(f);
      pred.Prepare(&set);
      const RecordView a = set.record(0);
      const RecordView b = set.record(1);
      size_t inter = a.IntersectionSize(b);
      size_t uni = a.size() + b.size() - inter;
      bool expected =
          uni > 0 && static_cast<double>(inter) / uni >= f - 1e-12;
      EXPECT_EQ(pred.Matches(set, 0, 1), expected)
          << "f=" << f << " inter=" << inter << " union=" << uni;
    }
  }
}

TEST(JaccardPredicateTest, ThresholdAlgebra) {
  JaccardPredicate pred(0.5);
  // T(r, s) = f/(1+f) (|r| + |s|): f=0.5 -> (1/3)(|r|+|s|).
  EXPECT_NEAR(pred.ThresholdForNorms(6, 9), 5.0, 1e-12);
  // Monotone in both arguments.
  EXPECT_LE(pred.ThresholdForNorms(3, 9), pred.ThresholdForNorms(6, 9));
}

TEST(JaccardPredicateTest, SizeRatioFilter) {
  JaccardPredicate pred(0.5);
  EXPECT_TRUE(pred.has_norm_filter());
  EXPECT_TRUE(pred.NormFilter(10, 5));    // ratio 0.5 >= f
  EXPECT_FALSE(pred.NormFilter(10, 4));   // ratio 0.4 < f
  EXPECT_TRUE(pred.NormFilter(7, 7));
}

TEST(JaccardPredicateTest, FilterNeverRejectsMatches) {
  // Any pair with Jaccard >= f satisfies min/max >= f.
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = 2, .vocabulary = 15}, 1000 + trial);
    JaccardPredicate pred(0.4);
    pred.Prepare(&set);
    if (pred.Matches(set, 0, 1)) {
      EXPECT_TRUE(
          pred.NormFilter(set.record(0).norm(), set.record(1).norm()));
    }
  }
}

TEST(CosinePredicateTest, IdenticalRecordsScoreOne) {
  RecordSet set = TwoRecords({1, 2, 3}, {1, 2, 3});
  CosinePredicate pred(0.99);
  pred.Prepare(&set);
  EXPECT_NEAR(set.record(0).OverlapWith(set.record(1)), 1.0, 1e-9);
  EXPECT_TRUE(pred.Matches(set, 0, 1));
}

TEST(CosinePredicateTest, DisjointRecordsScoreZero) {
  RecordSet set = TwoRecords({1, 2}, {3, 4});
  CosinePredicate pred(0.1);
  pred.Prepare(&set);
  EXPECT_FALSE(pred.Matches(set, 0, 1));
}

TEST(CosinePredicateTest, UnitVectorsAfterPrepare) {
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 30, .vocabulary = 40}, 4);
  CosinePredicate pred(0.5);
  pred.Prepare(&set);
  for (RecordId id = 0; id < set.size(); ++id) {
    double squared = 0;
    for (size_t i = 0; i < set.record(id).size(); ++i) {
      squared += set.record(id).score(i) * set.record(id).score(i);
    }
    EXPECT_NEAR(squared, 1.0, 1e-9);
  }
}

TEST(CosinePredicateTest, RareTokenMatchBeatsCommonTokenMatch) {
  // Two pairs each sharing one of their two tokens; the pair sharing the
  // rare token must score higher cosine.
  RecordSet set;
  // Token 0 appears in many records (common); token 9 in two (rare).
  for (int i = 0; i < 20; ++i) {
    set.Add(Record::FromTokens({0, static_cast<TokenId>(10 + i)}));
  }
  set.Add(Record::FromTokens({0, 40}));  // id 20, shares common token 0
  set.Add(Record::FromTokens({0, 41}));  // id 21
  set.Add(Record::FromTokens({9, 42}));  // id 22, shares rare token 9
  set.Add(Record::FromTokens({9, 43}));  // id 23
  CosinePredicate pred(0.5);
  pred.Prepare(&set);
  double common_sim = set.record(20).OverlapWith(set.record(21));
  double rare_sim = set.record(22).OverlapWith(set.record(23));
  EXPECT_GT(rare_sim, common_sim);
}

TEST(EditDistancePredicateTest, MatchesRunsVerifier) {
  TokenDictionary dict;
  CorpusBuilderOptions opts;
  opts.normalize = false;
  RecordSet set = BuildQGramCorpus({"similarity", "similarty", "different"},
                                   3, &dict, opts);
  EditDistancePredicate pred(1, 3);
  pred.Prepare(&set);
  EXPECT_TRUE(pred.Matches(set, 0, 1));   // one deletion apart
  EXPECT_FALSE(pred.Matches(set, 0, 2));
}

TEST(EditDistancePredicateTest, ThresholdFormula) {
  EditDistancePredicate pred(2, 3);
  // T = max(len) - 1 - q(k-1) = 20 - 1 - 3 = 16.
  EXPECT_DOUBLE_EQ(pred.ThresholdForNorms(20, 12), 16.0);
  EXPECT_DOUBLE_EQ(pred.ThresholdForNorms(12, 20), 16.0);
}

TEST(EditDistancePredicateTest, LengthFilter) {
  EditDistancePredicate pred(2, 3);
  EXPECT_TRUE(pred.NormFilter(10, 12));
  EXPECT_FALSE(pred.NormFilter(10, 13));
}

TEST(EditDistancePredicateTest, ShortRecordBound) {
  EditDistancePredicate pred(2, 3);
  EXPECT_DOUBLE_EQ(pred.ShortRecordNormBound(), 5.0);  // 2 + 3*(2-1)
  EditDistancePredicate pred_k1(1, 3);
  EXPECT_DOUBLE_EQ(pred_k1.ShortRecordNormBound(), 2.0);
}

TEST(EditDistancePredicateTest, NormIsTextLength) {
  TokenDictionary dict;
  CorpusBuilderOptions opts;
  opts.normalize = false;
  RecordSet set = BuildQGramCorpus({"hello"}, 3, &dict, opts);
  EditDistancePredicate pred(1, 3);
  pred.Prepare(&set);
  EXPECT_DOUBLE_EQ(set.record(0).norm(), 5.0);
}

TEST(DicePredicateTest, MatchesDefinition) {
  for (int trial = 0; trial < 100; ++trial) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = 2, .vocabulary = 20}, 3000 + trial);
    for (double f : {0.3, 0.6, 0.9}) {
      DicePredicate pred(f);
      pred.Prepare(&set);
      const RecordView a = set.record(0);
      const RecordView b = set.record(1);
      size_t inter = a.IntersectionSize(b);
      double denom = static_cast<double>(a.size() + b.size());
      bool expected = denom > 0 && 2.0 * inter / denom >= f - 1e-12;
      EXPECT_EQ(pred.Matches(set, 0, 1), expected) << "f=" << f;
    }
  }
}

TEST(DicePredicateTest, FilterNeverRejectsMatches) {
  for (int trial = 0; trial < 200; ++trial) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = 2, .vocabulary = 15}, 4000 + trial);
    DicePredicate pred(0.5);
    pred.Prepare(&set);
    if (pred.Matches(set, 0, 1)) {
      EXPECT_TRUE(
          pred.NormFilter(set.record(0).norm(), set.record(1).norm()));
    }
  }
}

TEST(OverlapCoefficientPredicateTest, MatchesDefinition) {
  for (int trial = 0; trial < 100; ++trial) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = 2, .vocabulary = 20}, 5000 + trial);
    for (double f : {0.4, 0.8, 1.0}) {
      OverlapCoefficientPredicate pred(f);
      pred.Prepare(&set);
      const RecordView a = set.record(0);
      const RecordView b = set.record(1);
      size_t inter = a.IntersectionSize(b);
      double denom = static_cast<double>(std::min(a.size(), b.size()));
      bool expected = denom > 0 &&
                      static_cast<double>(inter) / denom >= f - 1e-12;
      EXPECT_EQ(pred.Matches(set, 0, 1), expected) << "f=" << f;
    }
  }
}

TEST(OverlapCoefficientPredicateTest, SubsetAlwaysMatches) {
  RecordSet set;
  set.Add(Record::FromTokens({1, 2, 3}));
  set.Add(Record::FromTokens({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  OverlapCoefficientPredicate pred(1.0);
  pred.Prepare(&set);
  EXPECT_TRUE(pred.Matches(set, 0, 1));  // full containment of smaller
}

TEST(OverlapCoefficientPredicateTest, EmptyRecordsMatchNothing) {
  RecordSet set;
  set.Add(Record());
  set.Add(Record::FromTokens({1}));
  set.Add(Record());
  OverlapCoefficientPredicate pred(0.5);
  pred.Prepare(&set);
  EXPECT_FALSE(pred.Matches(set, 0, 1));
  EXPECT_FALSE(pred.Matches(set, 0, 2));  // both empty
}

TEST(HammingPredicateTest, MatchesDefinition) {
  for (int trial = 0; trial < 100; ++trial) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = 2, .vocabulary = 20, .min_tokens = 1}, 6000 + trial);
    for (double k : {2.0, 5.0, 10.0}) {
      HammingPredicate pred(k);
      pred.Prepare(&set);
      const RecordView a = set.record(0);
      const RecordView b = set.record(1);
      size_t inter = a.IntersectionSize(b);
      size_t sym_diff = a.size() + b.size() - 2 * inter;
      EXPECT_EQ(pred.Matches(set, 0, 1),
                static_cast<double>(sym_diff) <= k)
          << "k=" << k;
    }
  }
}

TEST(HammingPredicateTest, FilterAndShortBound) {
  HammingPredicate pred(3);
  EXPECT_TRUE(pred.NormFilter(10, 13));
  EXPECT_FALSE(pred.NormFilter(10, 14));
  // Two disjoint sets of total size <= k match with zero overlap; both
  // endpoints of such a pair sit below k + 1.
  EXPECT_DOUBLE_EQ(pred.ShortRecordNormBound(), 4.0);
}

TEST(PredicateDefaultTest, MatchesUsesThresholdAndFilter) {
  RecordSet set = TwoRecords({1, 2, 3}, {1, 2, 9});
  OverlapPredicate pred(2);
  pred.Prepare(&set);
  EXPECT_TRUE(pred.Matches(set, 0, 1));
  EXPECT_TRUE(pred.Matches(set, 1, 0));  // symmetric
}

}  // namespace
}  // namespace ssjoin
