// Differential tests for the sharded serving tier: a SimilarityService
// with ANY shard count must answer Query/BatchQuery/QueryTopK
// byte-identically to the 1-shard service, and — at every compaction
// point — identically to a fresh batch self-join over the same records.
//
// The main harness is randomized: a PCG32-scripted schedule of
// Insert/Query/Compact steps driven across shard counts {1, 2, 7}
// simultaneously, for several seeds and predicates. Nightly CI widens
// the sweep via SSJOIN_DIFF_SEEDS (and SSJOIN_DIFF_PREDICATES filters
// by predicate name for matrix jobs).

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "serve/similarity_service.h"
#include "serve/snapshot.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 7};

ServiceOptions ShardOptions(size_t num_shards, size_t memtable_limit = 0) {
  ServiceOptions options;
  options.num_shards = num_shards;
  options.memtable_limit = memtable_limit;
  return options;
}

/// Byte-identity over QueryMatch lists: same ids, bit-equal scores.
void ExpectSameMatches(const std::vector<QueryMatch>& expected,
                       const std::vector<QueryMatch>& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << context << " position " << i;
    EXPECT_EQ(expected[i].score, actual[i].score)
        << context << " position " << i << " id " << actual[i].id;
  }
}

/// Random record in the harness vocabulary, text synthesized the same
/// way test_util does so text-based predicates stay usable.
std::pair<Record, std::string> MakeRandomRecord(Rng& rng, ZipfTable& zipf) {
  int count = rng.UniformInt(1, 14);
  std::vector<TokenId> tokens;
  for (int t = 0; t < count; ++t) tokens.push_back(zipf.Sample(rng));
  Record record = Record::FromTokens(tokens);
  std::string text;
  for (size_t t = 0; t < record.size(); ++t) {
    if (t > 0) text += ' ';
    text += 'w' + std::to_string(record.token(t));
  }
  record.set_text_length(static_cast<uint32_t>(text.size()));
  return {std::move(record), std::move(text)};
}

/// Partner sets of a fresh batch self-join (the ground truth the
/// 1-shard service is held to at compaction points).
std::map<RecordId, std::set<RecordId>> JoinPartners(const RecordSet& corpus,
                                                    const Predicate& pred) {
  RecordSet prepared = corpus;
  Result<std::vector<std::pair<RecordId, RecordId>>> pairs =
      JoinToPairs(&prepared, pred, JoinAlgorithm::kProbeOptMerge);
  EXPECT_TRUE(pairs.ok()) << pairs.status().ToString();
  std::map<RecordId, std::set<RecordId>> partners;
  for (const auto& [a, b] : pairs.value()) {
    partners[a].insert(b);
    partners[b].insert(a);
  }
  return partners;
}

/// Full differential sweep: every corpus record queried against every
/// service. The 1-shard reference must reproduce the batch join's
/// partner sets; every other shard count must be byte-identical to the
/// reference, for Query and for QueryTopK.
void SweepAllRecords(
    const std::vector<std::unique_ptr<SimilarityService>>& services,
    const RecordSet& corpus, const Predicate& pred,
    const std::string& context) {
  std::map<RecordId, std::set<RecordId>> partners =
      JoinPartners(corpus, pred);
  for (RecordId r = 0; r < corpus.size(); ++r) {
    std::vector<QueryMatch> reference =
        services[0]->Query(corpus.record(r), corpus.text(r));
    std::set<RecordId> answered;
    for (const QueryMatch& m : reference) {
      if (m.id != r) answered.insert(m.id);
    }
    EXPECT_EQ(answered, partners[r])
        << context << " batch-join mismatch, record " << r;
    std::vector<QueryMatch> topk_reference =
        services[0]->QueryTopK(corpus.record(r), 8, corpus.text(r));
    for (size_t i = 1; i < services.size(); ++i) {
      ExpectSameMatches(
          reference, services[i]->Query(corpus.record(r), corpus.text(r)),
          context + " query shards=" +
              std::to_string(services[i]->num_shards()));
      ExpectSameMatches(
          topk_reference,
          services[i]->QueryTopK(corpus.record(r), 8, corpus.text(r)),
          context + " topk shards=" +
              std::to_string(services[i]->num_shards()));
    }
  }
}

/// One scripted run: services at every shard count fed the identical
/// schedule of queries, inserts and compactions.
void RunDifferential(const Predicate& pred, const std::string& pred_name,
                     uint64_t seed) {
  constexpr uint32_t kVocabulary = 60;
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 90, .vocabulary = kVocabulary}, seed * 3 + 1);
  std::vector<std::unique_ptr<SimilarityService>> services;
  for (size_t shards : kShardCounts) {
    services.push_back(std::make_unique<SimilarityService>(
        corpus, pred, ShardOptions(shards)));
  }
  Rng rng(seed * 977 + 13);
  ZipfTable zipf(kVocabulary, 0.9);
  const std::string tag = pred_name + " seed=" + std::to_string(seed);
  for (int step = 0; step < 60; ++step) {
    const std::string context = tag + " step=" + std::to_string(step);
    uint32_t u = rng.UniformU32(100);
    if (u < 55) {
      // Point query (random probe, in- or out-of-corpus) + top-k,
      // byte-compared across all shard counts.
      auto [record, text] = MakeRandomRecord(rng, zipf);
      std::vector<QueryMatch> reference =
          services[0]->Query(record.view(), text);
      std::vector<QueryMatch> topk_reference =
          services[0]->QueryTopK(record.view(), 5, text);
      for (size_t i = 1; i < services.size(); ++i) {
        ExpectSameMatches(reference, services[i]->Query(record.view(), text),
                          context + " query");
        ExpectSameMatches(topk_reference,
                          services[i]->QueryTopK(record.view(), 5, text),
                          context + " topk");
      }
    } else if (u < 85) {
      // Insert the same record everywhere; ids must agree.
      auto [record, text] = MakeRandomRecord(rng, zipf);
      corpus.Add(record, text);
      RecordId expected_id = services[0]->Insert(record.view(), text);
      EXPECT_EQ(expected_id, corpus.size() - 1) << context;
      for (size_t i = 1; i < services.size(); ++i) {
        EXPECT_EQ(expected_id, services[i]->Insert(record.view(), text))
            << context;
      }
    } else {
      // Compaction point: fold memtables everywhere, then the full
      // differential sweep against the batch join.
      for (auto& service : services) service->Compact();
      SweepAllRecords(services, corpus, pred, context + " post-compact");
    }
  }
  for (auto& service : services) service->Compact();
  SweepAllRecords(services, corpus, pred, tag + " final");
  // BatchQuery over the whole corpus must equal per-record Query.
  std::vector<std::vector<std::vector<QueryMatch>>> batched;
  for (auto& service : services) batched.push_back(service->BatchQuery(corpus));
  for (RecordId r = 0; r < corpus.size(); ++r) {
    std::vector<QueryMatch> reference =
        services[0]->Query(corpus.record(r), corpus.text(r));
    for (size_t i = 0; i < services.size(); ++i) {
      ExpectSameMatches(reference, batched[i][r],
                        tag + " batch shards=" +
                            std::to_string(services[i]->num_shards()));
    }
  }
}

int SeedCount() {
  const char* env = std::getenv("SSJOIN_DIFF_SEEDS");
  if (env == nullptr) return 10;
  int n = std::atoi(env);
  return n > 0 ? n : 10;
}

bool PredicateEnabled(const std::string& name) {
  const char* env = std::getenv("SSJOIN_DIFF_PREDICATES");
  if (env == nullptr) return true;
  return std::string(env).find(name) != std::string::npos;
}

TEST(ServeShardDifferentialTest, OverlapScriptedSchedule) {
  if (!PredicateEnabled("overlap")) GTEST_SKIP();
  OverlapPredicate pred(3);
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RunDifferential(pred, "overlap", static_cast<uint64_t>(seed));
  }
}

TEST(ServeShardDifferentialTest, JaccardScriptedSchedule) {
  if (!PredicateEnabled("jaccard")) GTEST_SKIP();
  JaccardPredicate pred(0.5);
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RunDifferential(pred, "jaccard", static_cast<uint64_t>(seed));
  }
}

TEST(ServeShardDifferentialTest, CosineScriptedSchedule) {
  if (!PredicateEnabled("cosine")) GTEST_SKIP();
  CosinePredicate pred(0.6);
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RunDifferential(pred, "cosine", static_cast<uint64_t>(seed));
  }
}

// ---------------------------------------------------------------------
// Shard routing plumbing.

TEST(ShardBoundsTest, PartitionsVocabularyByPostingMass) {
  // Heavy mass on low token ids: bounds must still produce num_shards
  // ranges covering the whole vocabulary.
  std::vector<uint64_t> df = {100, 80, 60, 5, 5, 5, 5, 5, 5, 5};
  std::vector<TokenId> bounds = ComputeShardBounds(df, 4);
  ASSERT_EQ(bounds.size(), 3u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.back(), df.size());
  // Every token routes to a shard in range.
  for (TokenId t = 0; t < df.size(); ++t) {
    Record r = Record::FromTokens({t});
    EXPECT_LT(RouteToShard(r.view(), bounds), 4u);
  }
}

TEST(ShardBoundsTest, DegenerateCases) {
  EXPECT_TRUE(ComputeShardBounds({5, 5, 5}, 1).empty());
  EXPECT_TRUE(ComputeShardBounds({5, 5, 5}, 0).empty());
  // More shards than vocabulary: pads, never crashes, routing stays in
  // range.
  std::vector<TokenId> bounds = ComputeShardBounds({7}, 5);
  EXPECT_EQ(bounds.size(), 4u);
  Record r = Record::FromTokens({0});
  EXPECT_LT(RouteToShard(r.view(), bounds), 5u);
  // Empty corpus.
  bounds = ComputeShardBounds({}, 3);
  EXPECT_EQ(bounds.size(), 2u);
  EXPECT_EQ(RouteToShard(RecordView(), bounds), 0u);
}

// ---------------------------------------------------------------------
// Compaction cost: only dirty shards rebuild.

TEST(ShardCompactionTest, CompactRebuildsOnlyDirtyShards) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 100}, 21);
  OverlapPredicate pred(3);
  SimilarityService service(corpus, pred, ShardOptions(4));
  ServiceStats initial = service.stats();
  ASSERT_EQ(initial.shards.size(), 4u);
  for (const ShardStats& s : initial.shards) {
    EXPECT_EQ(s.rebuilds, 1u);  // the construction-time build
  }

  Record record = Record::FromTokens({1, 2, 3, 4});
  service.Insert(record.view());
  ServiceStats after_insert = service.stats();
  size_t routed = 4;
  for (size_t s = 0; s < 4; ++s) {
    if (after_insert.shards[s].inserts == 1) {
      ASSERT_EQ(routed, 4u) << "insert routed to more than one shard";
      routed = s;
    }
  }
  ASSERT_LT(routed, 4u) << "insert routed to no shard";

  service.Compact();
  ServiceStats after_compact = service.stats();
  EXPECT_EQ(after_compact.compactions, 1u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(after_compact.shards[s].rebuilds, s == routed ? 2u : 1u)
        << "shard " << s;
  }

  // A corpus-statistics predicate (TF-IDF cosine) cannot compact
  // incrementally: every shard rebuilds.
  CosinePredicate cosine(0.6);
  SimilarityService cosine_service(corpus, cosine, ShardOptions(4));
  cosine_service.Insert(record.view());
  cosine_service.Compact();
  ServiceStats cosine_stats = cosine_service.stats();
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cosine_stats.shards[s].rebuilds, 2u) << "shard " << s;
  }
}

// ---------------------------------------------------------------------
// Top-k ties: duplicate records produce equal scores; the (score desc,
// id asc) order — and therefore the truncated result — must not depend
// on the shard count.

TEST(ShardTopKTest, TieBreaksByIdAcrossShardCounts) {
  RecordSet corpus;
  std::vector<TokenId> base_tokens = {2, 5, 9, 14};
  for (int copy = 0; copy < 6; ++copy) {
    corpus.Add(Record::FromTokens(base_tokens), {});
  }
  // Partial overlappers at distinct scores, plus noise sharing nothing.
  corpus.Add(Record::FromTokens({2, 5, 9, 30}), {});
  corpus.Add(Record::FromTokens({2, 5, 31, 32}), {});
  corpus.Add(Record::FromTokens({40, 41, 42}), {});
  OverlapPredicate pred(2);
  Record probe = Record::FromTokens(base_tokens);

  std::vector<QueryMatch> reference;
  for (size_t shards : kShardCounts) {
    SimilarityService service(corpus, pred, ShardOptions(shards));
    std::vector<QueryMatch> got = service.QueryTopK(probe.view(), 4);
    ASSERT_EQ(got.size(), 4u) << "shards=" << shards;
    // The six exact duplicates tie at the top; ids 0..3 win the k=4 cut.
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, static_cast<RecordId>(i)) << "shards=" << shards;
    }
    if (shards == 1) {
      reference = got;
    } else {
      ExpectSameMatches(reference, got,
                        "topk ties shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardTopKTest, RanksAboveThresholdlessTruncationAcrossShardCounts) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 80, .vocabulary = 50}, 33);
  JaccardPredicate pred(0.5);
  SimilarityService reference(corpus, pred, ShardOptions(1));
  SimilarityService sharded(corpus, pred, ShardOptions(7));
  for (RecordId r = 0; r < corpus.size(); ++r) {
    for (size_t k : {1u, 3u, 100u}) {
      ExpectSameMatches(
          reference.QueryTopK(corpus.record(r), k, corpus.text(r)),
          sharded.QueryTopK(corpus.record(r), k, corpus.text(r)),
          "topk record " + std::to_string(r) + " k=" + std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------
// Concurrency stress for the sharded service: exercised under TSan by
// tools/run_tsan_tests.sh. Readers (point, batch and top-k) race a
// writer thread that interleaves inserts with explicit compactions;
// auto-compaction is enabled too, so snapshot publication churns.

TEST(ShardConcurrencyTest, ConcurrentShardedReadersAndWriter) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 80}, 44);
  JaccardPredicate pred(0.5);
  SimilarityService service(corpus, pred,
                            ShardOptions(5, /*memtable_limit=*/16));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        RecordId r = rng.UniformU32(static_cast<uint32_t>(corpus.size()));
        uint32_t mode = rng.UniformU32(3);
        if (mode == 0) {
          answered += service.Query(corpus.record(r), corpus.text(r)).size();
        } else if (mode == 1) {
          answered +=
              service.QueryTopK(corpus.record(r), 5, corpus.text(r)).size();
        } else {
          RecordSet batch;
          for (int i = 0; i < 4; ++i) {
            RecordId id =
                rng.UniformU32(static_cast<uint32_t>(corpus.size()));
            batch.Add(corpus.record(id), corpus.text(id));
          }
          for (const auto& matches : service.BatchQuery(batch)) {
            answered += matches.size();
          }
        }
      }
    });
  }

  std::thread writer([&] {
    Rng rng(99);
    ZipfTable zipf(80, 0.9);
    for (int i = 0; i < 120; ++i) {
      auto [record, text] = MakeRandomRecord(rng, zipf);
      service.Insert(record.view(), std::move(text));
      if (i % 37 == 36) service.Compact();
    }
    service.Compact();
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(service.size(), corpus.size() + 120);
  EXPECT_EQ(service.memtable_size(), 0u);
  EXPECT_GT(answered.load(), 0u);

  // After the dust settles the sharded service still answers exactly
  // like a fresh 1-shard service over the same final corpus.
  std::shared_ptr<const IndexSnapshot> snap = service.snapshot();
  RecordSet final_corpus;
  for (RecordId id = 0; id < snap->base_records->size(); ++id) {
    final_corpus.Add(snap->base_records->record(id),
                     snap->base_records->text(id));
  }
  SimilarityService reference(final_corpus, pred, ShardOptions(1));
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    RecordId r =
        rng.UniformU32(static_cast<uint32_t>(final_corpus.size()));
    ExpectSameMatches(
        reference.Query(final_corpus.record(r), final_corpus.text(r)),
        service.Query(final_corpus.record(r), final_corpus.text(r)),
        "post-stress record " + std::to_string(r));
  }
}

}  // namespace
}  // namespace ssjoin
