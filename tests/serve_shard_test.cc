// Differential tests for the sharded serving tier: a SimilarityService
// with ANY shard count must answer Query/BatchQuery/QueryTopK
// byte-identically to the 1-shard service, and — at every compaction
// point — identically to a fresh batch self-join over the SURVIVING
// records (deletes are tombstoned, then physically dropped).
//
// The main harness is randomized: a PCG32-scripted schedule of
// Insert/Query/Delete/Compact steps — including delete-then-reinsert
// and delete-of-unknown-id probes — driven across shard counts
// {1, 2, 7} simultaneously, for several seeds and predicates. Nightly
// CI widens the sweep via SSJOIN_DIFF_SEEDS (and
// SSJOIN_DIFF_PREDICATES filters by predicate name for matrix jobs).

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "serve/checkpoint.h"
#include "serve/similarity_service.h"
#include "serve/snapshot.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

/// A scrubbed data directory for the out-of-core rider (stale files from
/// a previous run would otherwise leak into the fresh service's GC).
std::string FreshDataDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(EnsureDataDir(dir).ok());
  for (const std::string& file :
       {CheckpointFilePath(dir), CheckpointFilePath(dir) + ".tmp",
        WalFilePath(dir), WalFilePath(dir) + ".tmp"}) {
    ::unlink(file.c_str());
  }
  for (uint64_t id : ListSegmentFiles(dir)) {
    ::unlink(SegmentFilePath(dir, id).c_str());
  }
  return dir;
}

constexpr size_t kShardCounts[] = {1, 2, 7};

ServiceOptions ShardOptions(size_t num_shards, size_t memtable_limit = 0) {
  ServiceOptions options;
  options.num_shards = num_shards;
  options.memtable_limit = memtable_limit;
  return options;
}

RecordSet Slice(const RecordSet& corpus, RecordId begin, RecordId end) {
  RecordSet out;
  for (RecordId id = begin; id < end; ++id) {
    out.Add(corpus.record(id), corpus.text(id));
  }
  return out;
}

/// Byte-identity over QueryMatch lists: same ids, bit-equal scores.
void ExpectSameMatches(const std::vector<QueryMatch>& expected,
                       const std::vector<QueryMatch>& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << context << " position " << i;
    EXPECT_EQ(expected[i].score, actual[i].score)
        << context << " position " << i << " id " << actual[i].id;
  }
}

/// Random record in the harness vocabulary, text synthesized the same
/// way test_util does so text-based predicates stay usable.
std::pair<Record, std::string> MakeRandomRecord(Rng& rng, ZipfTable& zipf) {
  int count = rng.UniformInt(1, 14);
  std::vector<TokenId> tokens;
  for (int t = 0; t < count; ++t) tokens.push_back(zipf.Sample(rng));
  Record record = Record::FromTokens(tokens);
  std::string text;
  for (size_t t = 0; t < record.size(); ++t) {
    if (t > 0) text += ' ';
    text += 'w' + std::to_string(record.token(t));
  }
  record.set_text_length(static_cast<uint32_t>(text.size()));
  return {std::move(record), std::move(text)};
}

/// Partner sets of a fresh batch self-join (the ground truth the
/// 1-shard service is held to at compaction points).
std::map<RecordId, std::set<RecordId>> JoinPartners(const RecordSet& corpus,
                                                    const Predicate& pred) {
  RecordSet prepared = corpus;
  Result<std::vector<std::pair<RecordId, RecordId>>> pairs =
      JoinToPairs(&prepared, pred, JoinAlgorithm::kProbeOptMerge);
  EXPECT_TRUE(pairs.ok()) << pairs.status().ToString();
  std::map<RecordId, std::set<RecordId>> partners;
  for (const auto& [a, b] : pairs.value()) {
    partners[a].insert(b);
    partners[b].insert(a);
  }
  return partners;
}

/// Full differential sweep: every corpus record's CONTENT queried
/// against every service (deleted records become out-of-corpus probes).
/// The 1-shard reference must reproduce the partner sets of a fresh
/// batch self-join over the survivors only — the ground truth for
/// tombstoned deletes — and every other shard count must be
/// byte-identical to the reference, for Query and for QueryTopK.
void SweepAllRecords(
    const std::vector<std::unique_ptr<SimilarityService>>& services,
    const RecordSet& corpus, const std::vector<bool>& alive,
    const Predicate& pred, const std::string& context) {
  RecordSet survivors;
  std::vector<RecordId> gids;          // survivor local id -> global id
  std::vector<RecordId> locals(corpus.size(), 0);  // global -> local
  for (RecordId id = 0; id < corpus.size(); ++id) {
    if (alive[id]) {
      locals[id] = static_cast<RecordId>(gids.size());
      survivors.Add(corpus.record(id), corpus.text(id));
      gids.push_back(id);
    }
  }
  std::map<RecordId, std::set<RecordId>> partners =
      JoinPartners(survivors, pred);
  for (RecordId r = 0; r < corpus.size(); ++r) {
    std::vector<QueryMatch> reference =
        services[0]->Query(corpus.record(r), corpus.text(r));
    for (const QueryMatch& m : reference) {
      EXPECT_TRUE(alive[m.id])
          << context << " deleted id " << m.id << " answered";
    }
    if (alive[r]) {
      std::set<RecordId> expected;
      for (RecordId p : partners[locals[r]]) expected.insert(gids[p]);
      std::set<RecordId> answered;
      for (const QueryMatch& m : reference) {
        if (m.id != r) answered.insert(m.id);
      }
      EXPECT_EQ(answered, expected)
          << context << " survivor-join mismatch, record " << r;
    }
    std::vector<QueryMatch> topk_reference =
        services[0]->QueryTopK(corpus.record(r), 8, corpus.text(r));
    for (const QueryMatch& m : topk_reference) {
      EXPECT_TRUE(alive[m.id])
          << context << " deleted id " << m.id << " in topk";
    }
    for (size_t i = 1; i < services.size(); ++i) {
      ExpectSameMatches(
          reference, services[i]->Query(corpus.record(r), corpus.text(r)),
          context + " query shards=" +
              std::to_string(services[i]->num_shards()));
      ExpectSameMatches(
          topk_reference,
          services[i]->QueryTopK(corpus.record(r), 8, corpus.text(r)),
          context + " topk shards=" +
              std::to_string(services[i]->num_shards()));
    }
  }
}

/// One scripted run: services at every shard count fed the identical
/// schedule of queries, inserts, deletes (of live, already-deleted and
/// unknown ids, plus delete-then-reinserts) and compactions.
void RunDifferential(const Predicate& pred, const std::string& pred_name,
                     uint64_t seed) {
  constexpr uint32_t kVocabulary = 60;
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 90, .vocabulary = kVocabulary}, seed * 3 + 1);
  std::vector<std::unique_ptr<SimilarityService>> services;
  for (size_t shards : kShardCounts) {
    services.push_back(std::make_unique<SimilarityService>(
        corpus, pred, ShardOptions(shards)));
  }
  // A collapsed-chain rider (segment_merge_ratio = 0 folds the whole
  // chain on every compaction — the pre-segmented behaviour): the
  // scripted schedule thereby bit-compares the segment-chained services
  // against a single-segment one at every step.
  {
    ServiceOptions collapsed = ShardOptions(2);
    collapsed.segment_merge_ratio = 0;
    services.push_back(
        std::make_unique<SimilarityService>(corpus, pred, collapsed));
  }
  // Bitmap-width riders: the shard-count services above run with the
  // default full-width token-bitmap prefilter (bitmap_bits = 256), so
  // adding a filter-disabled twin and a narrow one-word twin makes the
  // scripted schedule bit-compare pruned probes against unpruned ones at
  // every step — across inserts, deletes, reinserts and compactions.
  for (size_t bits : {size_t{0}, size_t{64}}) {
    ServiceOptions rider = ShardOptions(2);
    rider.bitmap_bits = bits;
    services.push_back(
        std::make_unique<SimilarityService>(corpus, pred, rider));
  }
  // Out-of-core rider: a durable twin serving its base tier from mmap'd
  // segment files under a tiny resident budget, bit-compared against the
  // in-heap reference at every step. (Corpus-statistics predicates keep
  // owned arenas regardless, so for those this degenerates to a durable
  // twin — still a valid differential.)
  {
    ServiceOptions rider = ShardOptions(2);
    rider.data_dir =
        FreshDataDir("shard_ooc_" + pred_name + "_" + std::to_string(seed));
    rider.wal_sync = WalSyncPolicy::kNever;
    rider.resident_budget_bytes = 1;
    services.push_back(
        std::make_unique<SimilarityService>(corpus, pred, rider));
  }
  std::vector<bool> alive(corpus.size(), true);
  std::vector<RecordId> dead;  // ids whose deletes succeeded
  Rng rng(seed * 977 + 13);
  ZipfTable zipf(kVocabulary, 0.9);
  const std::string tag = pred_name + " seed=" + std::to_string(seed);
  // Every service must agree with the reference on a Delete's outcome.
  auto delete_everywhere = [&](RecordId id, bool expect_hit,
                               const std::string& context) {
    EXPECT_EQ(services[0]->Delete(id), expect_hit) << context;
    for (size_t i = 1; i < services.size(); ++i) {
      EXPECT_EQ(services[i]->Delete(id), expect_hit) << context;
    }
  };
  for (int step = 0; step < 70; ++step) {
    const std::string context = tag + " step=" + std::to_string(step);
    uint32_t u = rng.UniformU32(100);
    if (u < 45) {
      // Point query (random probe, in- or out-of-corpus) + top-k,
      // byte-compared across all shard counts.
      auto [record, text] = MakeRandomRecord(rng, zipf);
      std::vector<QueryMatch> reference =
          services[0]->Query(record.view(), text);
      std::vector<QueryMatch> topk_reference =
          services[0]->QueryTopK(record.view(), 5, text);
      for (size_t i = 1; i < services.size(); ++i) {
        ExpectSameMatches(reference, services[i]->Query(record.view(), text),
                          context + " query");
        ExpectSameMatches(topk_reference,
                          services[i]->QueryTopK(record.view(), 5, text),
                          context + " topk");
      }
    } else if (u < 70) {
      // Insert the same record everywhere; ids must agree.
      auto [record, text] = MakeRandomRecord(rng, zipf);
      corpus.Add(record, text);
      alive.push_back(true);
      RecordId expected_id = services[0]->Insert(record.view(), text);
      EXPECT_EQ(expected_id, corpus.size() - 1) << context;
      for (size_t i = 1; i < services.size(); ++i) {
        EXPECT_EQ(expected_id, services[i]->Insert(record.view(), text))
            << context;
      }
    } else if (u < 82) {
      // Delete: a live id, an already-deleted id, or an unknown id —
      // all three outcomes must agree across shard counts.
      uint32_t mode = rng.UniformU32(4);
      if (mode == 0) {
        delete_everywhere(static_cast<RecordId>(corpus.size()) + 7, false,
                          context + " delete-unknown");
      } else if (mode == 1 && !dead.empty()) {
        delete_everywhere(dead[rng.UniformU32(
                              static_cast<uint32_t>(dead.size()))],
                          false, context + " delete-dead");
      } else {
        // Linear-probe from a random start for a live victim.
        RecordId victim =
            rng.UniformU32(static_cast<uint32_t>(corpus.size()));
        RecordId tried = 0;
        while (!alive[victim] && tried < corpus.size()) {
          victim = (victim + 1) % static_cast<RecordId>(corpus.size());
          ++tried;
        }
        if (alive[victim]) {
          delete_everywhere(victim, true, context + " delete-live");
          alive[victim] = false;
          dead.push_back(victim);
        }
      }
    } else if (u < 88) {
      // Delete-then-reinsert: resurrect a dead record's CONTENT under a
      // fresh id; the old id must stay dead.
      if (!dead.empty()) {
        RecordId old =
            dead[rng.UniformU32(static_cast<uint32_t>(dead.size()))];
        // Deep-copy before the self-append: Add may grow the arena the
        // view points into.
        Record revived = Record::FromView(corpus.record(old));
        std::string text = corpus.text(old);
        corpus.Add(revived.view(), text);
        alive.push_back(true);
        RecordId fresh = services[0]->Insert(revived.view(), text);
        EXPECT_EQ(fresh, corpus.size() - 1) << context;
        for (size_t i = 1; i < services.size(); ++i) {
          EXPECT_EQ(fresh, services[i]->Insert(revived.view(), text))
              << context;
        }
      }
    } else {
      // Compaction point: fold memtables and drop tombstones everywhere,
      // then the full differential sweep against the survivor join.
      for (auto& service : services) {
        service->Compact();
        EXPECT_EQ(service->tombstone_count(), 0u) << context;
        EXPECT_EQ(service->memtable_size(), 0u) << context;
      }
      SweepAllRecords(services, corpus, alive, pred,
                      context + " post-compact");
    }
  }
  for (auto& service : services) service->Compact();
  SweepAllRecords(services, corpus, alive, pred, tag + " final");
  // BatchQuery over the whole corpus must equal per-record Query.
  std::vector<std::vector<std::vector<QueryMatch>>> batched;
  for (auto& service : services) batched.push_back(service->BatchQuery(corpus));
  for (RecordId r = 0; r < corpus.size(); ++r) {
    std::vector<QueryMatch> reference =
        services[0]->Query(corpus.record(r), corpus.text(r));
    for (size_t i = 0; i < services.size(); ++i) {
      ExpectSameMatches(reference, batched[i][r],
                        tag + " batch shards=" +
                            std::to_string(services[i]->num_shards()));
    }
  }
}

int SeedCount() {
  const char* env = std::getenv("SSJOIN_DIFF_SEEDS");
  if (env == nullptr) return 10;
  int n = std::atoi(env);
  return n > 0 ? n : 10;
}

bool PredicateEnabled(const std::string& name) {
  const char* env = std::getenv("SSJOIN_DIFF_PREDICATES");
  if (env == nullptr) return true;
  return std::string(env).find(name) != std::string::npos;
}

TEST(ServeShardDifferentialTest, OverlapScriptedSchedule) {
  if (!PredicateEnabled("overlap")) GTEST_SKIP();
  OverlapPredicate pred(3);
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RunDifferential(pred, "overlap", static_cast<uint64_t>(seed));
  }
}

TEST(ServeShardDifferentialTest, JaccardScriptedSchedule) {
  if (!PredicateEnabled("jaccard")) GTEST_SKIP();
  JaccardPredicate pred(0.5);
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RunDifferential(pred, "jaccard", static_cast<uint64_t>(seed));
  }
}

TEST(ServeShardDifferentialTest, CosineScriptedSchedule) {
  if (!PredicateEnabled("cosine")) GTEST_SKIP();
  CosinePredicate pred(0.6);
  for (int seed = 0; seed < SeedCount(); ++seed) {
    RunDifferential(pred, "cosine", static_cast<uint64_t>(seed));
  }
}

// ---------------------------------------------------------------------
// Shard routing plumbing.

TEST(ShardBoundsTest, PartitionsVocabularyByPostingMass) {
  // Heavy mass on low token ids: bounds must still produce num_shards
  // ranges covering the whole vocabulary.
  std::vector<uint64_t> df = {100, 80, 60, 5, 5, 5, 5, 5, 5, 5};
  std::vector<TokenId> bounds = ComputeShardBounds(df, 4);
  ASSERT_EQ(bounds.size(), 3u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.back(), df.size());
  // Every token routes to a shard in range.
  for (TokenId t = 0; t < df.size(); ++t) {
    Record r = Record::FromTokens({t});
    EXPECT_LT(RouteToShard(r.view(), bounds), 4u);
  }
}

TEST(ShardBoundsTest, DegenerateCases) {
  EXPECT_TRUE(ComputeShardBounds({5, 5, 5}, 1).empty());
  EXPECT_TRUE(ComputeShardBounds({5, 5, 5}, 0).empty());
  // More shards than vocabulary: pads, never crashes, routing stays in
  // range.
  std::vector<TokenId> bounds = ComputeShardBounds({7}, 5);
  EXPECT_EQ(bounds.size(), 4u);
  Record r = Record::FromTokens({0});
  EXPECT_LT(RouteToShard(r.view(), bounds), 5u);
  // Empty corpus.
  bounds = ComputeShardBounds({}, 3);
  EXPECT_EQ(bounds.size(), 2u);
  EXPECT_EQ(RouteToShard(RecordView(), bounds), 0u);
}

// ---------------------------------------------------------------------
// Compaction cost: only dirty shards rebuild.

TEST(ShardCompactionTest, CompactRebuildsOnlyDirtyShards) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 100}, 21);
  OverlapPredicate pred(3);
  SimilarityService service(corpus, pred, ShardOptions(4));
  ServiceStats initial = service.stats();
  ASSERT_EQ(initial.shards.size(), 4u);
  for (const ShardStats& s : initial.shards) {
    EXPECT_EQ(s.rebuilds, 1u);  // the construction-time build
  }

  Record record = Record::FromTokens({1, 2, 3, 4});
  service.Insert(record.view());
  ServiceStats after_insert = service.stats();
  size_t routed = 4;
  for (size_t s = 0; s < 4; ++s) {
    if (after_insert.shards[s].inserts == 1) {
      ASSERT_EQ(routed, 4u) << "insert routed to more than one shard";
      routed = s;
    }
  }
  ASSERT_LT(routed, 4u) << "insert routed to no shard";

  service.Compact();
  ServiceStats after_compact = service.stats();
  EXPECT_EQ(after_compact.compactions, 1u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(after_compact.shards[s].rebuilds, s == routed ? 2u : 1u)
        << "shard " << s;
  }

  // A corpus-statistics predicate (TF-IDF cosine) cannot compact
  // incrementally: every shard rebuilds.
  CosinePredicate cosine(0.6);
  SimilarityService cosine_service(corpus, cosine, ShardOptions(4));
  cosine_service.Insert(record.view());
  cosine_service.Compact();
  ServiceStats cosine_stats = cosine_service.stats();
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cosine_stats.shards[s].rebuilds, 2u) << "shard " << s;
  }
}

// ---------------------------------------------------------------------
// Segment chains: geometric descending deltas grow the chain to 4+
// segments (the default size-tiered ratio 2 never fires on 90/30/10/4),
// and every answer must stay byte-identical to the collapsed
// single-segment service (segment_merge_ratio = 0) at every shard
// count — then one larger delta cascades the whole chain back into one
// segment and answers still must not move. This is the acceptance bar
// of the segmented-compaction refactor, checked deterministically (the
// randomized RunDifferential schedules also carry a collapsed rider).

TEST(ServeSegmentChainTest, DeepChainMatchesCollapsedServiceAcrossShards) {
  constexpr uint32_t kVocabulary = 60;
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 146, .vocabulary = kVocabulary}, 123);
  JaccardPredicate pred(0.5);

  std::vector<std::unique_ptr<SimilarityService>> services;
  {
    ServiceOptions collapsed = ShardOptions(1);
    collapsed.segment_merge_ratio = 0;
    services.push_back(std::make_unique<SimilarityService>(
        Slice(corpus, 0, 90), pred, collapsed));
  }
  for (size_t shards : kShardCounts) {
    services.push_back(std::make_unique<SimilarityService>(
        Slice(corpus, 0, 90), pred, ShardOptions(shards)));
  }
  std::vector<bool> alive(corpus.size(), true);
  // Records 90.. are inserted batch by batch below; mark the not-yet-
  // inserted tail dead so SweepAllRecords joins only what is served.
  for (RecordId id = 90; id < corpus.size(); ++id) alive[id] = false;

  RecordId next = 90;
  auto insert_batch = [&](size_t count, const std::string& context) {
    for (size_t i = 0; i < count; ++i, ++next) {
      alive[next] = true;
      RecordId expected =
          services[0]->Insert(corpus.record(next), corpus.text(next));
      ASSERT_EQ(expected, next) << context;
      for (size_t s = 1; s < services.size(); ++s) {
        ASSERT_EQ(services[s]->Insert(corpus.record(next), corpus.text(next)),
                  next)
            << context;
      }
    }
    for (auto& service : services) service->Compact();
    SweepAllRecords(services, corpus, alive, pred, context);
  };

  insert_batch(30, "chain batch=30");
  insert_batch(10, "chain batch=10");
  insert_batch(4, "chain batch=4");
  EXPECT_EQ(services[0]->stats().segments, 1u);
  for (size_t s = 1; s < services.size(); ++s) {
    EXPECT_EQ(services[s]->stats().segments, 4u)
        << "shards=" << services[s]->num_shards();
  }

  // Deletes spread over three different segments, then a tombstone-only
  // compaction: dead masks fold in place (live counts 89/29/10/3 trip no
  // merge), the chain stays 4 deep, answers stay identical.
  for (RecordId victim : {RecordId{5}, RecordId{100}, RecordId{131}}) {
    for (auto& service : services) {
      EXPECT_TRUE(service->Delete(victim)) << "victim " << victim;
    }
    alive[victim] = false;
  }
  for (auto& service : services) service->Compact();
  for (size_t s = 1; s < services.size(); ++s) {
    EXPECT_EQ(services[s]->stats().segments, 4u)
        << "shards=" << services[s]->num_shards();
  }
  SweepAllRecords(services, corpus, alive, pred, "chain post-delete");

  // A 12-record delta triggers the full cascade — (3,12), (10,15),
  // (29,25), (89,54) — collapsing everything into one merged segment;
  // byte-identity must survive the merges too.
  insert_batch(12, "chain cascade");
  for (size_t s = 1; s < services.size(); ++s) {
    EXPECT_EQ(services[s]->stats().segments, 1u)
        << "shards=" << services[s]->num_shards();
    EXPECT_EQ(services[s]->stats().segments_merged, 8u)
        << "shards=" << services[s]->num_shards();
  }
}

// ---------------------------------------------------------------------
// Top-k ties: duplicate records produce equal scores; the (score desc,
// id asc) order — and therefore the truncated result — must not depend
// on the shard count.

TEST(ShardTopKTest, TieBreaksByIdAcrossShardCounts) {
  RecordSet corpus;
  std::vector<TokenId> base_tokens = {2, 5, 9, 14};
  for (int copy = 0; copy < 6; ++copy) {
    corpus.Add(Record::FromTokens(base_tokens), {});
  }
  // Partial overlappers at distinct scores, plus noise sharing nothing.
  corpus.Add(Record::FromTokens({2, 5, 9, 30}), {});
  corpus.Add(Record::FromTokens({2, 5, 31, 32}), {});
  corpus.Add(Record::FromTokens({40, 41, 42}), {});
  OverlapPredicate pred(2);
  Record probe = Record::FromTokens(base_tokens);

  std::vector<QueryMatch> reference;
  for (size_t shards : kShardCounts) {
    SimilarityService service(corpus, pred, ShardOptions(shards));
    std::vector<QueryMatch> got = service.QueryTopK(probe.view(), 4);
    ASSERT_EQ(got.size(), 4u) << "shards=" << shards;
    // The six exact duplicates tie at the top; ids 0..3 win the k=4 cut.
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, static_cast<RecordId>(i)) << "shards=" << shards;
    }
    if (shards == 1) {
      reference = got;
    } else {
      ExpectSameMatches(reference, got,
                        "topk ties shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardTopKTest, RanksAboveThresholdlessTruncationAcrossShardCounts) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 80, .vocabulary = 50}, 33);
  JaccardPredicate pred(0.5);
  SimilarityService reference(corpus, pred, ShardOptions(1));
  SimilarityService sharded(corpus, pred, ShardOptions(7));
  for (RecordId r = 0; r < corpus.size(); ++r) {
    for (size_t k : {1u, 3u, 100u}) {
      ExpectSameMatches(
          reference.QueryTopK(corpus.record(r), k, corpus.text(r)),
          sharded.QueryTopK(corpus.record(r), k, corpus.text(r)),
          "topk record " + std::to_string(r) + " k=" + std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------
// Concurrency stress for the sharded service: exercised under TSan by
// tools/run_tsan_tests.sh. Readers (point, batch and top-k) race a
// writer thread that interleaves inserts and deletes with explicit
// compactions; auto-compaction is enabled too, so snapshot publication
// churns and tombstones ride delta images under load.

TEST(ShardConcurrencyTest, ConcurrentShardedReadersAndWriter) {
  RecordSet corpus = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 80}, 44);
  JaccardPredicate pred(0.5);
  SimilarityService service(corpus, pred,
                            ShardOptions(5, /*memtable_limit=*/16));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        RecordId r = rng.UniformU32(static_cast<uint32_t>(corpus.size()));
        uint32_t mode = rng.UniformU32(3);
        if (mode == 0) {
          answered += service.Query(corpus.record(r), corpus.text(r)).size();
        } else if (mode == 1) {
          answered +=
              service.QueryTopK(corpus.record(r), 5, corpus.text(r)).size();
        } else {
          RecordSet batch;
          for (int i = 0; i < 4; ++i) {
            RecordId id =
                rng.UniformU32(static_cast<uint32_t>(corpus.size()));
            batch.Add(corpus.record(id), corpus.text(id));
          }
          for (const auto& matches : service.BatchQuery(batch)) {
            answered += matches.size();
          }
        }
      }
    });
  }

  // The writer's schedule is deterministic, so the survivor set is too:
  // every 9th iteration deletes a pseudo-random id from the INITIAL
  // corpus (some repeat — those must miss), interleaved with inserts.
  std::vector<std::pair<Record, std::string>> inserted;
  std::set<RecordId> writer_deleted;
  std::thread writer([&] {
    Rng rng(99);
    ZipfTable zipf(80, 0.9);
    for (int i = 0; i < 120; ++i) {
      auto [record, text] = MakeRandomRecord(rng, zipf);
      inserted.emplace_back(record, text);
      service.Insert(record.view(), std::move(text));
      if (i % 9 == 4) {
        RecordId victim = static_cast<RecordId>(
            (static_cast<size_t>(i) * 13) % corpus.size());
        if (service.Delete(victim)) writer_deleted.insert(victim);
      }
      if (i % 37 == 36) service.Compact();
    }
    service.Compact();
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(service.size(),
            corpus.size() + 120 - writer_deleted.size());
  EXPECT_GT(writer_deleted.size(), 0u);
  EXPECT_EQ(service.memtable_size(), 0u);
  EXPECT_EQ(service.tombstone_count(), 0u);
  EXPECT_GT(answered.load(), 0u);

  // After the dust settles the sharded service still answers exactly
  // like a fresh 1-shard service over the SURVIVORS (reference ids are
  // dense, so expectations map through the survivors' global ids).
  RecordSet survivors;
  std::vector<RecordId> gids;
  for (RecordId id = 0; id < corpus.size(); ++id) {
    if (writer_deleted.count(id) == 0) {
      survivors.Add(corpus.record(id), corpus.text(id));
      gids.push_back(id);
    }
  }
  for (size_t j = 0; j < inserted.size(); ++j) {
    survivors.Add(inserted[j].first.view(), inserted[j].second);
    gids.push_back(static_cast<RecordId>(corpus.size() + j));
  }
  SimilarityService reference(survivors, pred, ShardOptions(1));
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    RecordId r =
        rng.UniformU32(static_cast<uint32_t>(survivors.size()));
    std::vector<QueryMatch> expected =
        reference.Query(survivors.record(r), survivors.text(r));
    for (QueryMatch& m : expected) m.id = gids[m.id];
    ExpectSameMatches(
        expected,
        service.Query(survivors.record(r), survivors.text(r)),
        "post-stress record " + std::to_string(r));
  }
}

}  // namespace
}  // namespace ssjoin
