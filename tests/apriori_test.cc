#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_common.h"
#include "mining/apriori.h"
#include "test_util.h"

namespace ssjoin {
namespace {

using PairSet = std::set<uint64_t>;

/// All record pairs implied by the emitted groups.
PairSet CoveredPairs(const RecordSet& records, const AprioriOptions& options,
                     std::vector<double> weights = {}) {
  if (weights.empty()) weights.assign(records.vocabulary_size(), 1.0);
  AprioriMiner miner(records, std::move(weights), options);
  PairSet covered;
  miner.Mine([&covered](const MinedGroup& group) {
    for (size_t i = 0; i < group.rids.size(); ++i) {
      for (size_t j = i + 1; j < group.rids.size(); ++j) {
        covered.insert(PairKey(group.rids[i], group.rids[j]));
      }
    }
  });
  return covered;
}

/// Pairs whose unweighted overlap reaches `threshold` (ground truth).
PairSet MatchingPairs(const RecordSet& records, double threshold) {
  PairSet matches;
  for (RecordId a = 0; a < records.size(); ++a) {
    for (RecordId b = a + 1; b < records.size(); ++b) {
      if (records.record(a).IntersectionSize(records.record(b)) >=
          threshold) {
        matches.insert(PairKey(a, b));
      }
    }
  }
  return matches;
}

void ExpectCoversAllMatches(const RecordSet& records,
                            const AprioriOptions& options, double threshold) {
  PairSet covered = CoveredPairs(records, options);
  for (uint64_t key : MatchingPairs(records, threshold)) {
    EXPECT_TRUE(covered.count(key) > 0)
        << "pair (" << (key >> 32) << "," << (key & 0xFFFFFFFF)
        << ") with overlap >= " << threshold << " not covered";
  }
}

TEST(AprioriTest, ConfirmedGroupsCarryRealMatches) {
  RecordSet records;
  records.Add(Record::FromTokens({1, 2, 3, 4}));
  records.Add(Record::FromTokens({1, 2, 3, 5}));
  records.Add(Record::FromTokens({7, 8}));
  AprioriOptions options;
  options.min_weight = 3;
  options.minhash_compaction = false;
  // Disable early output (support threshold 2 = minimum support) so the
  // itemset chain reaches the confirmed weight-3 group.
  options.early_output_support = 2;
  std::vector<double> weights(10, 1.0);
  AprioriMiner miner(records, weights, options);
  bool found_confirmed = false;
  miner.Mine([&](const MinedGroup& group) {
    if (group.confirmed) {
      found_confirmed = true;
      EXPECT_GE(group.weight, 3.0 - 1e-6);
      // Every pair in a confirmed group genuinely overlaps >= T.
      for (size_t i = 0; i < group.rids.size(); ++i) {
        for (size_t j = i + 1; j < group.rids.size(); ++j) {
          EXPECT_GE(records.record(group.rids[i])
                        .IntersectionSize(records.record(group.rids[j])),
                    3u);
        }
      }
    }
  });
  EXPECT_TRUE(found_confirmed);
}

TEST(AprioriTest, CoversAllMatchesOnRandomData) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RecordSet records = testing_util::MakeRandomRecordSet(
        {.num_records = 80, .vocabulary = 40}, seed);
    for (double threshold : {2.0, 4.0}) {
      AprioriOptions options;
      options.min_weight = threshold;
      ExpectCoversAllMatches(records, options, threshold);
    }
  }
}

TEST(AprioriTest, CoversWithCompactionDisabled) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 30}, 9);
  AprioriOptions options;
  options.min_weight = 3;
  options.minhash_compaction = false;
  ExpectCoversAllMatches(records, options, 3);
}

TEST(AprioriTest, CoversWithAggressiveEarlyOutput) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 30}, 10);
  AprioriOptions options;
  options.min_weight = 3;
  options.early_output_support = 20;  // almost everything leaves early
  ExpectCoversAllMatches(records, options, 3);
}

TEST(AprioriTest, CoversWithMaxLevelCutoff) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 30}, 11);
  AprioriOptions options;
  options.min_weight = 5;
  options.max_level = 2;  // stop early; open itemsets must still be emitted
  ExpectCoversAllMatches(records, options, 5);
}

TEST(AprioriTest, CoversWithLargeListPruning) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 70, .vocabulary = 25, .zipf_exponent = 1.3}, 12);
  AprioriOptions options;
  options.min_weight = 3;
  // Mark the two hottest tokens as the L set (total weight 2 < T = 3).
  options.token_in_large_set.assign(records.vocabulary_size(), false);
  std::vector<std::pair<uint64_t, TokenId>> by_df;
  for (TokenId t = 0; t < records.vocabulary_size(); ++t) {
    by_df.push_back({records.doc_frequency(t), t});
  }
  std::sort(by_df.rbegin(), by_df.rend());
  options.token_in_large_set[by_df[0].second] = true;
  options.token_in_large_set[by_df[1].second] = true;
  ExpectCoversAllMatches(records, options, 3);
}

TEST(AprioriTest, WeightedItemsets) {
  RecordSet records;
  records.Add(Record::FromTokens({0, 1}));
  records.Add(Record::FromTokens({0, 1}));
  records.Add(Record::FromTokens({2}));
  std::vector<double> weights = {2.5, 1.0, 1.0};
  AprioriOptions options;
  options.min_weight = 3.0;  // tokens {0,1} together weigh 3.5 >= 3
  PairSet covered = CoveredPairs(records, options, weights);
  EXPECT_TRUE(covered.count(PairKey(0, 1)) > 0);
}

TEST(AprioriTest, NoGroupsWhenNothingRepeats) {
  RecordSet records;
  records.Add(Record::FromTokens({0, 1}));
  records.Add(Record::FromTokens({2, 3}));
  AprioriOptions options;
  options.min_weight = 1;
  EXPECT_TRUE(CoveredPairs(records, options).empty());
}

TEST(AprioriTest, EmptyInput) {
  RecordSet records;
  AprioriOptions options;
  options.min_weight = 2;
  EXPECT_TRUE(CoveredPairs(records, options).empty());
}

}  // namespace
}  // namespace ssjoin
