#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/address_generator.h"
#include "data/citation_generator.h"
#include "data/corpus_builder.h"
#include "data/corpus_stats.h"
#include "text/token_dictionary.h"

namespace ssjoin {
namespace {

TEST(CitationGeneratorTest, DeterministicGivenSeed) {
  CitationGeneratorOptions opts;
  opts.num_records = 200;
  EXPECT_EQ(CitationGenerator(opts).Generate(),
            CitationGenerator(opts).Generate());
}

TEST(CitationGeneratorTest, SeedsProduceDifferentData) {
  CitationGeneratorOptions a, b;
  a.num_records = b.num_records = 50;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(CitationGenerator(a).Generate(), CitationGenerator(b).Generate());
}

TEST(CitationGeneratorTest, ShapeMatchesPaperTable1) {
  CitationGeneratorOptions opts;
  opts.num_records = 4000;
  std::vector<std::string> texts = CitationGenerator(opts).Generate();
  ASSERT_EQ(texts.size(), opts.num_records);

  TokenDictionary dict;
  RecordSet words = BuildWordCorpus(texts, &dict);
  CorpusStats stats = ComputeCorpusStats(words);
  // Paper: All-words averages ~24 words per citation. Allow a wide band.
  EXPECT_GT(stats.average_set_size, 10);
  EXPECT_LT(stats.average_set_size, 40);
  // Skewed frequencies: top 1% of words carries a large share.
  EXPECT_GT(stats.top1pct_occurrence_share, 0.1);
}

TEST(CitationGeneratorTest, DuplicatesCreateHighOverlapPairs) {
  CitationGeneratorOptions opts;
  opts.num_records = 300;
  opts.duplicate_fraction = 0.6;
  std::vector<std::string> texts = CitationGenerator(opts).Generate();
  TokenDictionary dict;
  RecordSet set = BuildWordCorpus(texts, &dict);
  // Count pairs sharing at least 70% of the smaller record.
  int high_overlap = 0;
  for (RecordId a = 0; a < set.size() && high_overlap < 5; ++a) {
    for (RecordId b = a + 1; b < set.size(); ++b) {
      size_t shared = set.record(a).IntersectionSize(set.record(b));
      size_t smaller = std::min(set.record(a).size(), set.record(b).size());
      if (smaller > 0 && shared >= 0.7 * smaller) {
        ++high_overlap;
        break;
      }
    }
  }
  EXPECT_GE(high_overlap, 5);
}

TEST(CitationGeneratorTest, ProvenanceLabelsDuplicates) {
  CitationGeneratorOptions opts;
  opts.num_records = 400;
  opts.duplicate_fraction = 0.5;
  GeneratedCitations corpus =
      CitationGenerator(opts).GenerateWithProvenance();
  ASSERT_EQ(corpus.texts.size(), corpus.paper_id.size());
  // Texts must match the plain Generate() stream.
  EXPECT_EQ(corpus.texts, CitationGenerator(opts).Generate());
  // With 50% duplication some papers must be cited more than once, and
  // same-paper records should share far more words than random pairs.
  std::map<uint32_t, std::vector<size_t>> by_paper;
  for (size_t i = 0; i < corpus.paper_id.size(); ++i) {
    by_paper[corpus.paper_id[i]].push_back(i);
  }
  EXPECT_LT(by_paper.size(), corpus.texts.size());
  TokenDictionary dict;
  RecordSet set = BuildWordCorpus(corpus.texts, &dict);
  int checked = 0;
  for (const auto& [paper, ids] : by_paper) {
    if (ids.size() < 2 || checked >= 20) continue;
    ++checked;
    size_t shared = set.record(static_cast<RecordId>(ids[0]))
                        .IntersectionSize(
                            set.record(static_cast<RecordId>(ids[1])));
    size_t smaller = std::min(set.record(ids[0]).size(),
                              set.record(ids[1]).size());
    EXPECT_GE(shared * 2, smaller)
        << "same-paper records share too little (paper " << paper << ")";
  }
  EXPECT_GE(checked, 10);
}

TEST(AddressGeneratorTest, Deterministic) {
  AddressGeneratorOptions opts;
  opts.num_records = 100;
  std::vector<AddressRecord> a = AddressGenerator(opts).Generate();
  std::vector<AddressRecord> b = AddressGenerator(opts).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].FullText(), b[i].FullText());
  }
}

TEST(AddressGeneratorTest, ThreeGramShapeMatchesPaperTable1) {
  AddressGeneratorOptions opts;
  opts.num_records = 3000;
  std::vector<std::string> texts = AddressGenerator(opts).GenerateFullTexts();
  TokenDictionary dict;
  RecordSet grams = BuildQGramCorpus(texts, 3, &dict);
  CorpusStats stats = ComputeCorpusStats(grams);
  // Paper: All-3grams averages ~47 grams per address record.
  EXPECT_GT(stats.average_set_size, 25);
  EXPECT_LT(stats.average_set_size, 75);
}

TEST(AddressGeneratorTest, NamePartIsShort) {
  AddressGeneratorOptions opts;
  opts.num_records = 500;
  std::vector<AddressRecord> records = AddressGenerator(opts).Generate();
  double total = 0;
  for (const AddressRecord& r : records) total += r.name.size();
  double avg = total / records.size();
  // Paper's Name-3grams averages ~16 grams => names around 14 chars.
  EXPECT_GT(avg, 8);
  EXPECT_LT(avg, 30);
}

TEST(CorpusBuilderTest, WordCorpusKeepsNormalizedText) {
  TokenDictionary dict;
  RecordSet set = BuildWordCorpus({"Hello, World!"}, &dict);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.text(0), "hello world");
  EXPECT_EQ(set.record(0).size(), 2u);
  EXPECT_EQ(set.record(0).text_length(), 11u);
}

TEST(CorpusBuilderTest, QGramCorpusSetsTextLength) {
  TokenDictionary dict;
  RecordSet set = BuildQGramCorpus({"abcd"}, 3, &dict);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.record(0).text_length(), 4u);
  // Padded "$$abcd$$": 6 grams, all distinct.
  EXPECT_EQ(set.record(0).size(), 6u);
}

TEST(CorpusBuilderTest, TaggedGramsMakeSetIntersectionMultiset) {
  TokenDictionary dict;
  // "aaaa" has repeated "aaa" grams; tagging must keep them distinct so
  // the record size equals len + q - 1.
  RecordSet set = BuildQGramCorpus({"aaaa", "aaa"}, 3, &dict);
  EXPECT_EQ(set.record(0).size(), 6u);  // 4 + 3 - 1
  EXPECT_EQ(set.record(1).size(), 5u);  // 3 + 3 - 1
  // Multiset intersection of the padded gram bags ($$a, $aa, aaa, aa$,
  // a$$) is 5; the second "aaa" of record 0 is tagged and unshared.
  EXPECT_EQ(set.record(0).IntersectionSize(set.record(1)), 5u);
}

TEST(CorpusStatsTest, BasicCounts) {
  RecordSet set;
  set.Add(Record::FromTokens({0, 1, 2}));
  set.Add(Record::FromTokens({0}));
  CorpusStats stats = ComputeCorpusStats(set);
  EXPECT_EQ(stats.num_records, 2u);
  EXPECT_EQ(stats.num_distinct_elements, 3u);
  EXPECT_EQ(stats.total_occurrences, 4u);
  EXPECT_EQ(stats.max_set_size, 3u);
  EXPECT_EQ(stats.min_set_size, 1u);
  EXPECT_EQ(stats.max_doc_frequency, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(CorpusStatsTest, TopFrequentTokens) {
  RecordSet set;
  set.Add(Record::FromTokens({0, 1}));
  set.Add(Record::FromTokens({1, 2}));
  set.Add(Record::FromTokens({1}));
  std::vector<TokenId> top = TopFrequentTokens(set, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);  // df 3
}

}  // namespace
}  // namespace ssjoin
