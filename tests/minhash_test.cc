#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "minhash/minhash.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

TEST(MinHashTest, DeterministicGivenSeed) {
  MinHasher a(16, 7), b(16, 7);
  std::vector<uint32_t> ids = {1, 5, 9, 100};
  EXPECT_EQ(a.Signature(ids), b.Signature(ids));
}

TEST(MinHashTest, OrderInvariant) {
  MinHasher hasher(16, 7);
  EXPECT_EQ(hasher.Signature({1, 2, 3}), hasher.Signature({3, 1, 2}));
}

TEST(MinHashTest, IdenticalSetsResembleFully) {
  MinHasher hasher(32, 3);
  std::vector<uint32_t> ids = {4, 8, 15, 16, 23, 42};
  auto sig = hasher.Signature(ids);
  EXPECT_DOUBLE_EQ(MinHasher::EstimateResemblance(sig, sig), 1.0);
}

TEST(MinHashTest, DisjointSetsResembleLittle) {
  MinHasher hasher(64, 9);
  std::vector<uint32_t> a, b;
  for (uint32_t i = 0; i < 200; ++i) {
    a.push_back(i);
    b.push_back(1000 + i);
  }
  double sim = MinHasher::EstimateResemblance(hasher.Signature(a),
                                              hasher.Signature(b));
  EXPECT_LT(sim, 0.15);
}

TEST(MinHashTest, EstimatesJaccardResemblance) {
  // Sets with known resemblance r: |A ∩ B| / |A ∪ B|. With k independent
  // components the estimator is Binomial(k, r)/k; use k large and a loose
  // tolerance.
  MinHasher hasher(512, 21);
  Rng rng(5);
  for (double target : {0.2, 0.5, 0.8}) {
    // |A|=n shared + m each side unique => r = n / (n + 2m).
    int n = 300;
    int m = static_cast<int>(n * (1 - target) / (2 * target));
    std::vector<uint32_t> a, b;
    for (int i = 0; i < n; ++i) {
      a.push_back(i);
      b.push_back(i);
    }
    for (int i = 0; i < m; ++i) {
      a.push_back(10000 + i);
      b.push_back(20000 + i);
    }
    double expected = static_cast<double>(n) / (n + 2 * m);
    double estimated = MinHasher::EstimateResemblance(hasher.Signature(a),
                                                      hasher.Signature(b));
    EXPECT_NEAR(estimated, expected, 0.08) << "target=" << target;
  }
}

TEST(MinHashTest, AbsorbMatchesBatchSignature) {
  MinHasher hasher(16, 11);
  std::vector<uint32_t> ids = {3, 1, 4, 1, 5, 9, 2, 6};
  auto incremental = hasher.EmptySignature();
  for (uint32_t id : ids) hasher.Absorb(&incremental, id);
  EXPECT_EQ(incremental, hasher.Signature(ids));
}

TEST(MinHashTest, SubsetAbsorptionOnlyLowers) {
  MinHasher hasher(16, 13);
  auto sig = hasher.Signature({1, 2, 3});
  auto grown = sig;
  hasher.Absorb(&grown, 99);
  for (size_t i = 0; i < sig.size(); ++i) EXPECT_LE(grown[i], sig[i]);
}

}  // namespace
}  // namespace ssjoin
