#include <vector>

#include <gtest/gtest.h>

#include "core/join.h"
#include "core/overlap_predicate.h"
#include "core/probe_cluster.h"
#include "test_util.h"

namespace ssjoin {
namespace {

RecordSet PreparedRandomSet(uint64_t seed, const OverlapPredicate& pred,
                            uint32_t num_records = 120) {
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = num_records, .vocabulary = 50}, seed);
  pred.Prepare(&set);
  return set;
}

TEST(ClusterSetTest, FirstRecordCreatesCluster) {
  OverlapPredicate pred(3);
  RecordSet set = PreparedRandomSet(1, pred, 5);
  ClusterSet clusters(pred, {});
  MergeStats stats;
  ClusterSet::ProbeResult result =
      clusters.ProbeAndAssign(set.record(0), &stats);
  EXPECT_TRUE(result.created);
  EXPECT_EQ(result.home, 0u);
  EXPECT_TRUE(result.joins.empty());
  EXPECT_EQ(clusters.num_clusters(), 1u);
  EXPECT_EQ(clusters.cluster_size(0), 1u);
}

TEST(ClusterSetTest, IdenticalRecordsShareCluster) {
  OverlapPredicate pred(2);
  RecordSet set;
  for (int i = 0; i < 6; ++i) set.Add(Record::FromTokens({1, 2, 3, 4}));
  pred.Prepare(&set);
  ClusterSet clusters(pred, {});
  MergeStats stats;
  for (RecordId id = 0; id < set.size(); ++id) {
    clusters.ProbeAndAssign(set.record(id), &stats);
  }
  EXPECT_EQ(clusters.num_clusters(), 1u);
  EXPECT_EQ(clusters.cluster_size(0), 6u);
}

TEST(ClusterSetTest, DisjointRecordsSplitClusters) {
  OverlapPredicate pred(2);
  RecordSet set;
  set.Add(Record::FromTokens({1, 2, 3}));
  set.Add(Record::FromTokens({10, 11, 12}));
  pred.Prepare(&set);
  ClusterSet clusters(pred, {});
  MergeStats stats;
  clusters.ProbeAndAssign(set.record(0), &stats);
  ClusterSet::ProbeResult second =
      clusters.ProbeAndAssign(set.record(1), &stats);
  EXPECT_TRUE(second.created);
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

TEST(ClusterSetTest, JoinsReportClustersAboveThreshold) {
  OverlapPredicate pred(3);
  RecordSet set;
  set.Add(Record::FromTokens({1, 2, 3, 4}));  // cluster 0
  set.Add(Record::FromTokens({1, 2, 3, 9}));  // overlaps 3 with cluster 0
  pred.Prepare(&set);
  ClusterSet clusters(pred, {});
  MergeStats stats;
  clusters.ProbeAndAssign(set.record(0), &stats);
  ClusterSet::ProbeResult result =
      clusters.ProbeAndAssign(set.record(1), &stats);
  ASSERT_EQ(result.joins.size(), 1u);
  EXPECT_EQ(result.joins[0], 0u);
}

TEST(ClusterSetTest, MaxClustersForcesFallbackAssignment) {
  OverlapPredicate pred(2);
  RecordSet set;
  set.Add(Record::FromTokens({1, 2}));
  set.Add(Record::FromTokens({10, 11}));
  set.Add(Record::FromTokens({20, 21}));  // disjoint from both clusters
  pred.Prepare(&set);
  ClusterSetOptions options;
  options.max_clusters = 2;
  ClusterSet clusters(pred, options);
  MergeStats stats;
  clusters.ProbeAndAssign(set.record(0), &stats);
  clusters.ProbeAndAssign(set.record(1), &stats);
  ClusterSet::ProbeResult third =
      clusters.ProbeAndAssign(set.record(2), &stats);
  EXPECT_FALSE(third.created);
  EXPECT_LT(third.home, 2u);
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

TEST(ClusterSetTest, MaxClusterSizeSpillsToNewCluster) {
  OverlapPredicate pred(2);
  RecordSet set;
  for (int i = 0; i < 5; ++i) set.Add(Record::FromTokens({1, 2, 3}));
  pred.Prepare(&set);
  ClusterSetOptions options;
  options.max_cluster_size = 2;
  ClusterSet clusters(pred, options);
  MergeStats stats;
  for (RecordId id = 0; id < set.size(); ++id) {
    clusters.ProbeAndAssign(set.record(id), &stats);
  }
  EXPECT_GE(clusters.num_clusters(), 2u);
  for (ClusterId c = 0; c < clusters.num_clusters(); ++c) {
    EXPECT_LE(clusters.cluster_size(c), 2u);
  }
}

TEST(ClusterSetTest, MemberPostingsTracksInsertedSizes) {
  OverlapPredicate pred(2);
  RecordSet set;
  set.Add(Record::FromTokens({1, 2, 3}));
  set.Add(Record::FromTokens({1, 2, 3, 4}));
  pred.Prepare(&set);
  ClusterSet clusters(pred, {});
  MergeStats stats;
  clusters.ProbeAndAssign(set.record(0), &stats);
  clusters.ProbeAndAssign(set.record(1), &stats);
  ASSERT_EQ(clusters.num_clusters(), 1u);
  EXPECT_EQ(clusters.cluster_member_postings(0), 7u);
}

TEST(ProbeClusterJoinTest, FewerIndexPostingsOnDuplicateHeavyData) {
  // Probe-Cluster's point: highly overlapping records share cluster-level
  // postings, shrinking the top index relative to one posting per record.
  OverlapPredicate pred(4);
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 200, .vocabulary = 80, .duplicate_fraction = 0.7}, 31);
  pred.Prepare(&set);

  uint64_t record_level_postings = set.total_token_occurrences();
  Result<JoinStats> result =
      ProbeClusterJoin(set, pred, {}, [](RecordId, RecordId) {});
  ASSERT_TRUE(result.ok());
  // Total = cluster-level + member-level; the cluster level must compress.
  EXPECT_LT(result.value().index_postings, 2 * record_level_postings);
  EXPECT_GT(result.value().pairs, 0u);
}

TEST(ProbeClusterJoinTest, PresortOffStillExact) {
  OverlapPredicate pred(3);
  RecordSet set = PreparedRandomSet(17, pred);
  std::vector<std::pair<RecordId, RecordId>> expected;
  BruteForceJoin(set, pred, [&expected](RecordId a, RecordId b) {
    expected.emplace_back(a, b);
  });
  std::sort(expected.begin(), expected.end());

  ProbeClusterOptions options;
  options.presort = false;
  std::vector<std::pair<RecordId, RecordId>> actual;
  Result<JoinStats> result = ProbeClusterJoin(
      set, pred, options,
      [&actual](RecordId a, RecordId b) { actual.emplace_back(a, b); });
  ASSERT_TRUE(result.ok());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(ProbeClusterJoinTest, TightSimilarityThresholdStillExact) {
  OverlapPredicate pred(3);
  RecordSet set = PreparedRandomSet(18, pred);
  std::vector<std::pair<RecordId, RecordId>> expected;
  BruteForceJoin(set, pred, [&expected](RecordId a, RecordId b) {
    expected.emplace_back(a, b);
  });
  std::sort(expected.begin(), expected.end());

  for (double assign : {0.05, 0.9}) {
    ProbeClusterOptions options;
    options.cluster.assign_similarity_threshold = assign;
    std::vector<std::pair<RecordId, RecordId>> actual;
    Result<JoinStats> result = ProbeClusterJoin(
        set, pred, options,
        [&actual](RecordId a, RecordId b) { actual.emplace_back(a, b); });
    ASSERT_TRUE(result.ok());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "assign_similarity=" << assign;
  }
}

}  // namespace
}  // namespace ssjoin
