#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/foreign_join.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

using PairVector = std::vector<std::pair<RecordId, RecordId>>;

PairVector BruteForceCross(const RecordSet& left, const RecordSet& right,
                           const Predicate& pred) {
  PairVector pairs;
  for (RecordId a = 0; a < left.size(); ++a) {
    for (RecordId b = 0; b < right.size(); ++b) {
      if (pred.MatchesCross(left, a, right, b)) pairs.emplace_back(a, b);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

PairVector RunForeign(RecordSet left, RecordSet right, const Predicate& pred,
                      ForeignJoinOptions options = {}) {
  PairVector pairs;
  Result<JoinStats> stats = ForeignProbeJoin(
      &left, &right, pred, options,
      [&pairs](RecordId a, RecordId b) { pairs.emplace_back(a, b); });
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

template <typename Pred>
void ExpectCrossEquivalence(RecordSet left, RecordSet right,
                            const Pred& pred) {
  RecordSet ref_left = left;
  RecordSet ref_right = right;
  pred.PrepareForJoin(&ref_left, &ref_right);
  PairVector expected = BruteForceCross(ref_left, ref_right, pred);
  for (bool optimized : {true, false}) {
    for (bool presort : {true, false}) {
      ForeignJoinOptions options;
      options.optimized_merge = optimized;
      options.presort = presort;
      EXPECT_EQ(RunForeign(left, right, pred, options), expected)
          << pred.name() << " optimized=" << optimized
          << " presort=" << presort;
    }
  }
}

TEST(ForeignJoinTest, OverlapMatchesBruteForce) {
  RecordSet left = testing_util::MakeRandomRecordSet(
      {.num_records = 90, .vocabulary = 60}, 1);
  RecordSet right = testing_util::MakeRandomRecordSet(
      {.num_records = 110, .vocabulary = 60}, 2);
  ExpectCrossEquivalence(left, right, OverlapPredicate(3));
}

TEST(ForeignJoinTest, JaccardMatchesBruteForce) {
  RecordSet left = testing_util::MakeRandomRecordSet(
      {.num_records = 80, .vocabulary = 50}, 3);
  RecordSet right = testing_util::MakeRandomRecordSet(
      {.num_records = 70, .vocabulary = 50}, 4);
  ExpectCrossEquivalence(left, right, JaccardPredicate(0.5));
}

TEST(ForeignJoinTest, CosineUsesCombinedCorpusWeights) {
  RecordSet left = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 40}, 5);
  RecordSet right = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 40}, 6);
  ExpectCrossEquivalence(left, right, CosinePredicate(0.6));

  // PrepareForJoin must weight both sides identically: a token's score in
  // equal-sized records must agree across sides.
  RecordSet a, b;
  a.Add(Record::FromTokens({1, 2}));
  b.Add(Record::FromTokens({1, 2}));
  CosinePredicate pred(0.5);
  pred.PrepareForJoin(&a, &b);
  EXPECT_DOUBLE_EQ(a.record(0).score(0), b.record(0).score(0));
  EXPECT_DOUBLE_EQ(a.record(0).score(1), b.record(0).score(1));
}

TEST(ForeignJoinTest, EditDistanceIncludingShortStrings) {
  Rng rng(7);
  auto make_texts = [&rng](int n) {
    std::vector<std::string> texts;
    for (int i = 0; i < n; ++i) {
      // Mix tiny strings (exercising the cross short-record fallback)
      // with normal ones.
      texts.push_back(testing_util::RandomAsciiString(rng, 0, 14));
    }
    return texts;
  };
  TokenDictionary dict;
  CorpusBuilderOptions copts;
  copts.normalize = false;
  RecordSet left = BuildQGramCorpus(make_texts(70), 3, &dict, copts);
  RecordSet right = BuildQGramCorpus(make_texts(80), 3, &dict, copts);
  ExpectCrossEquivalence(left, right, EditDistancePredicate(2, 3));
}

TEST(ForeignJoinTest, HammingIncludingTinySets) {
  Rng rng(8);
  auto make_set = [&rng](int n, uint64_t seed) {
    RecordSet set = testing_util::MakeRandomRecordSet(
        {.num_records = static_cast<uint32_t>(n),
         .vocabulary = 40,
         .min_tokens = 1,
         .max_tokens = 6},
        seed);
    return set;
  };
  ExpectCrossEquivalence(make_set(60, 9), make_set(60, 10),
                         HammingPredicate(4));
}

TEST(ForeignJoinTest, DisjointVocabulariesYieldNothing) {
  RecordSet left, right;
  left.Add(Record::FromTokens({1, 2, 3}));
  right.Add(Record::FromTokens({10, 11, 12}));
  OverlapPredicate pred(1);
  EXPECT_TRUE(RunForeign(left, right, pred).empty());
}

TEST(ForeignJoinTest, EmptySides) {
  RecordSet empty;
  RecordSet nonempty;
  nonempty.Add(Record::FromTokens({1, 2}));
  OverlapPredicate pred(1);
  EXPECT_TRUE(RunForeign(empty, nonempty, pred).empty());
  EXPECT_TRUE(RunForeign(nonempty, empty, pred).empty());
  EXPECT_TRUE(RunForeign(empty, empty, pred).empty());
}

TEST(ForeignJoinTest, AsymmetricSidesEmitLeftRightIds) {
  RecordSet left, right;
  left.Add(Record::FromTokens({1, 2, 3}));   // left 0
  right.Add(Record::FromTokens({7}));        // right 0: no match
  right.Add(Record::FromTokens({1, 2, 3}));  // right 1: match
  OverlapPredicate pred(3);
  PairVector pairs = RunForeign(left, right, pred);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 0u);   // left id
  EXPECT_EQ(pairs[0].second, 1u);  // right id
}

}  // namespace
}  // namespace ssjoin
