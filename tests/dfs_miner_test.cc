#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_common.h"
#include "mining/dfs_miner.h"
#include "test_util.h"

namespace ssjoin {
namespace {

using PairSet = std::set<uint64_t>;

PairSet CoveredPairs(const RecordSet& records, const AprioriOptions& options,
                     std::vector<double> weights = {}) {
  if (weights.empty()) weights.assign(records.vocabulary_size(), 1.0);
  DfsMiner miner(records, std::move(weights), options);
  PairSet covered;
  miner.Mine([&covered](const MinedGroup& group) {
    for (size_t i = 0; i < group.rids.size(); ++i) {
      for (size_t j = i + 1; j < group.rids.size(); ++j) {
        covered.insert(PairKey(group.rids[i], group.rids[j]));
      }
    }
  });
  return covered;
}

void ExpectCoversAllMatches(const RecordSet& records,
                            const AprioriOptions& options,
                            double threshold) {
  PairSet covered = CoveredPairs(records, options);
  for (RecordId a = 0; a < records.size(); ++a) {
    for (RecordId b = a + 1; b < records.size(); ++b) {
      if (records.record(a).IntersectionSize(records.record(b)) >=
          threshold) {
        EXPECT_TRUE(covered.count(PairKey(a, b)) > 0)
            << "pair (" << a << "," << b << ") not covered";
      }
    }
  }
}

TEST(DfsMinerTest, ConfirmedGroupsAreRealMatches) {
  RecordSet records;
  records.Add(Record::FromTokens({1, 2, 3, 4}));
  records.Add(Record::FromTokens({1, 2, 3, 5}));
  records.Add(Record::FromTokens({7, 8}));
  AprioriOptions options;
  options.min_weight = 3;
  options.early_output_support = 2;
  std::vector<double> weights(10, 1.0);
  DfsMiner miner(records, weights, options);
  bool found_confirmed = false;
  miner.Mine([&](const MinedGroup& group) {
    if (!group.confirmed) return;
    found_confirmed = true;
    for (size_t i = 0; i < group.rids.size(); ++i) {
      for (size_t j = i + 1; j < group.rids.size(); ++j) {
        EXPECT_GE(records.record(group.rids[i])
                      .IntersectionSize(records.record(group.rids[j])),
                  3u);
      }
    }
  });
  EXPECT_TRUE(found_confirmed);
}

TEST(DfsMinerTest, CoversAllMatchesOnRandomData) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    RecordSet records = testing_util::MakeRandomRecordSet(
        {.num_records = 80, .vocabulary = 40}, seed);
    for (double threshold : {2.0, 4.0}) {
      AprioriOptions options;
      options.min_weight = threshold;
      ExpectCoversAllMatches(records, options, threshold);
    }
  }
}

TEST(DfsMinerTest, CoversWithLargeListPruning) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 70, .vocabulary = 25, .zipf_exponent = 1.3}, 24);
  AprioriOptions options;
  options.min_weight = 3;
  options.token_in_large_set.assign(records.vocabulary_size(), false);
  // Hottest two tokens (weight 2 < T = 3) form L.
  std::vector<std::pair<uint64_t, TokenId>> by_df;
  for (TokenId t = 0; t < records.vocabulary_size(); ++t) {
    by_df.push_back({records.doc_frequency(t), t});
  }
  std::sort(by_df.rbegin(), by_df.rend());
  options.token_in_large_set[by_df[0].second] = true;
  options.token_in_large_set[by_df[1].second] = true;
  ExpectCoversAllMatches(records, options, 3);
}

TEST(DfsMinerTest, CoversWithDepthCutoff) {
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 30}, 25);
  AprioriOptions options;
  options.min_weight = 5;
  options.max_level = 2;
  ExpectCoversAllMatches(records, options, 5);
}

TEST(DfsMinerTest, CoversWithImmediateDeadline) {
  // A deadline that fires instantly degrades to "emit every root", which
  // must still cover all matches.
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 60, .vocabulary = 30}, 26);
  AprioriOptions options;
  options.min_weight = 4;
  options.deadline_seconds = 1e-9;
  ExpectCoversAllMatches(records, options, 4);
}

TEST(DfsMinerTest, AgreesWithAprioriOnCoverage) {
  // Both miners must cover the same ground truth; their group sets may
  // differ, but neither may miss a matching pair the other covers.
  RecordSet records = testing_util::MakeRandomRecordSet(
      {.num_records = 70, .vocabulary = 35}, 27);
  double threshold = 3;
  AprioriOptions options;
  options.min_weight = threshold;

  PairSet dfs = CoveredPairs(records, options);
  std::vector<double> weights(records.vocabulary_size(), 1.0);
  AprioriMiner apriori(records, weights, options);
  PairSet apriori_covered;
  apriori.Mine([&apriori_covered](const MinedGroup& group) {
    for (size_t i = 0; i < group.rids.size(); ++i) {
      for (size_t j = i + 1; j < group.rids.size(); ++j) {
        apriori_covered.insert(PairKey(group.rids[i], group.rids[j]));
      }
    }
  });
  for (RecordId a = 0; a < records.size(); ++a) {
    for (RecordId b = a + 1; b < records.size(); ++b) {
      if (records.record(a).IntersectionSize(records.record(b)) >=
          threshold) {
        uint64_t key = PairKey(a, b);
        EXPECT_TRUE(dfs.count(key) > 0);
        EXPECT_TRUE(apriori_covered.count(key) > 0);
      }
    }
  }
}

TEST(DfsMinerTest, EmptyAndTrivialInputs) {
  AprioriOptions options;
  options.min_weight = 2;
  RecordSet empty;
  EXPECT_TRUE(CoveredPairs(empty, options).empty());

  RecordSet no_repeats;
  no_repeats.Add(Record::FromTokens({0, 1}));
  no_repeats.Add(Record::FromTokens({2, 3}));
  EXPECT_TRUE(CoveredPairs(no_repeats, options).empty());
}

}  // namespace
}  // namespace ssjoin
