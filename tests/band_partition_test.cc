#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/band_partition.h"
#include "core/edit_distance_predicate.h"
#include "core/join.h"
#include "core/join_common.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

std::vector<double> RandomSortedValues(Rng& rng, int n, double spread) {
  std::vector<double> values;
  double v = 0;
  for (int i = 0; i < n; ++i) {
    v += rng.NextDouble() * spread;
    values.push_back(v);
  }
  return values;
}

void ExpectWindowsCoverAllInRangePairs(const std::vector<double>& values,
                                       double k,
                                       const std::vector<BandWindow>& wins) {
  for (size_t a = 0; a < values.size(); ++a) {
    for (size_t b = a + 1; b < values.size(); ++b) {
      if (values[b] - values[a] > k) break;  // sorted: later b only worse
      bool covered = false;
      for (const BandWindow& w : wins) {
        if (w.begin <= a && b < w.end) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "pair (" << a << "," << b << ") uncovered";
    }
  }
}

TEST(SimpleBandWindowsTest, CoversAllInRangePairs) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> values = RandomSortedValues(rng, 120, 2.0);
    for (double k : {0.5, 2.0, 10.0}) {
      ExpectWindowsCoverAllInRangePairs(values, k,
                                        SimpleBandWindows(values, k));
    }
  }
}

TEST(SimpleBandWindowsTest, SingleWindowWhenRangeCoversAll) {
  std::vector<double> values = {1, 2, 3};
  auto windows = SimpleBandWindows(values, 100);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].begin, 0u);
  EXPECT_EQ(windows[0].end, 3u);
}

TEST(SimpleBandWindowsTest, EmptyInput) {
  EXPECT_TRUE(SimpleBandWindows({}, 1).empty());
}

TEST(MergedWindowsTest, GreedyAndOptimalPreserveCoverage) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> values = RandomSortedValues(rng, 100, 1.5);
    double k = 1.0;
    auto simple = SimpleBandWindows(values, k);
    ExpectWindowsCoverAllInRangePairs(values, k, GreedyMergeWindows(simple));
    ExpectWindowsCoverAllInRangePairs(values, k, OptimalMergeWindows(simple));
  }
}

TEST(MergedWindowsTest, OptimalNeverCostsMoreThanGreedyOrSimple) {
  Rng rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> values = RandomSortedValues(rng, 150, 1.0);
    auto simple = SimpleBandWindows(values, 2.0);
    uint64_t simple_cost = BandPartitionCost(simple);
    uint64_t greedy_cost = BandPartitionCost(GreedyMergeWindows(simple));
    uint64_t optimal_cost = BandPartitionCost(OptimalMergeWindows(simple));
    EXPECT_LE(optimal_cost, greedy_cost);
    EXPECT_LE(optimal_cost, simple_cost);
  }
}

TEST(BandPartitionByNormTest, GroupsContainAllCloseNormPairs) {
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 80, .vocabulary = 40}, 5);
  // Use record size as norm (unit scores; set them explicitly).
  for (RecordId id = 0; id < set.size(); ++id) {
    set.set_norm(id, static_cast<double>(set.record(id).size()));
  }
  double k = 2.0;
  auto partitions = BandPartitionByNorm(set, k, BandStrategy::kOptimal);
  std::set<uint64_t> covered;
  for (const auto& partition : partitions) {
    for (size_t i = 0; i < partition.size(); ++i) {
      for (size_t j = i + 1; j < partition.size(); ++j) {
        covered.insert(PairKey(partition[i], partition[j]));
      }
    }
  }
  for (RecordId a = 0; a < set.size(); ++a) {
    for (RecordId b = a + 1; b < set.size(); ++b) {
      if (std::abs(set.record(a).norm() - set.record(b).norm()) <= k) {
        EXPECT_TRUE(covered.count(PairKey(a, b)) > 0)
            << "(" << a << "," << b << ")";
      }
    }
  }
}

TEST(BandPartitionedJoinTest, MatchesBruteForceForEditDistance) {
  Rng rng(6);
  std::vector<std::string> texts;
  for (int i = 0; i < 100; ++i) {
    if (!texts.empty() && rng.Bernoulli(0.4)) {
      std::string base = texts[rng.UniformU32(texts.size())];
      if (!base.empty()) {
        base[rng.UniformU32(base.size())] =
            static_cast<char>('a' + rng.UniformU32(26));
      }
      texts.push_back(base);
    } else {
      texts.push_back(testing_util::RandomAsciiString(rng, 2, 18));
    }
  }
  const int k = 2;
  TokenDictionary dict;
  CorpusBuilderOptions copts;
  copts.normalize = false;
  RecordSet base = BuildQGramCorpus(texts, 3, &dict, copts);
  EditDistancePredicate pred(k, 3);

  RecordSet reference = base;
  pred.Prepare(&reference);
  std::vector<std::pair<RecordId, RecordId>> expected;
  BruteForceJoin(reference, pred, [&expected](RecordId a, RecordId b) {
    expected.emplace_back(a, b);
  });
  std::sort(expected.begin(), expected.end());

  for (BandStrategy strategy :
       {BandStrategy::kSimple, BandStrategy::kGreedy, BandStrategy::kOptimal}) {
    RecordSet working = base;
    std::vector<std::pair<RecordId, RecordId>> actual;
    Result<JoinStats> result = BandPartitionedJoin(
        &working, pred, k, strategy,
        [&actual](RecordId a, RecordId b) { actual.emplace_back(a, b); });
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected)
        << "strategy=" << static_cast<int>(strategy);
  }
}

}  // namespace
}  // namespace ssjoin
