#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_common.h"
#include "core/topk_join.h"
#include "test_util.h"

namespace ssjoin {
namespace {

std::vector<TopKMatch> BruteForceTopK(RecordSet records, TopKMetric metric,
                                      size_t k) {
  // Reuse the library's own preparation so scores are computed on the
  // same weights, then rank all positive pairs.
  JoinStats stats;
  Result<std::vector<TopKMatch>> prepared =
      TopKJoin(&records, metric, 0, &stats);  // k=0: prepare only
  EXPECT_TRUE(prepared.ok());

  std::vector<TopKMatch> all;
  for (RecordId a = 0; a < records.size(); ++a) {
    for (RecordId b = a + 1; b < records.size(); ++b) {
      const RecordView ra = records.record(a);
      const RecordView rb = records.record(b);
      double overlap = ra.OverlapWith(rb);
      if (overlap <= 0) continue;
      double score = 0;
      switch (metric) {
        case TopKMetric::kOverlap:
        case TopKMetric::kCosine:
          score = overlap;
          break;
        case TopKMetric::kJaccard:
          score = overlap / (ra.norm() + rb.norm() - overlap);
          break;
        case TopKMetric::kDice:
          score = 2 * overlap / (ra.norm() + rb.norm());
          break;
      }
      if (score > 0) all.push_back({a, b, score});
    }
  }
  std::sort(all.begin(), all.end(), [](const TopKMatch& x,
                                       const TopKMatch& y) {
    if (x.score != y.score) return x.score > y.score;
    return PairKey(x.a, x.b) < PairKey(y.a, y.b);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void ExpectTopKMatches(const RecordSet& base, TopKMetric metric, size_t k) {
  std::vector<TopKMatch> expected = BruteForceTopK(base, metric, k);
  RecordSet working = base;
  Result<std::vector<TopKMatch>> actual = TopKJoin(&working, metric, k);
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual.value().size(), expected.size())
      << TopKMetricName(metric) << " k=" << k;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.value()[i].a, expected[i].a) << i;
    EXPECT_EQ(actual.value()[i].b, expected[i].b) << i;
    EXPECT_DOUBLE_EQ(actual.value()[i].score, expected[i].score) << i;
  }
}

class TopKJoinTest : public ::testing::TestWithParam<TopKMetric> {};

TEST_P(TopKJoinTest, MatchesBruteForceAcrossKs) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 60}, 31);
  for (size_t k : {1u, 5u, 25u, 100u, 100000u}) {
    ExpectTopKMatches(base, GetParam(), k);
  }
}

TEST_P(TopKJoinTest, SparseData) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 100, .vocabulary = 700, .duplicate_fraction = 0.05},
      32);
  ExpectTopKMatches(base, GetParam(), 10);
}

INSTANTIATE_TEST_SUITE_P(Metrics, TopKJoinTest,
                         ::testing::Values(TopKMetric::kOverlap,
                                           TopKMetric::kJaccard,
                                           TopKMetric::kCosine,
                                           TopKMetric::kDice),
                         [](const auto& info) {
                           return TopKMetricName(info.param);
                         });

TEST(TopKJoinEdgeTest, KZeroReturnsNothing) {
  RecordSet base = testing_util::MakeRandomRecordSet({.num_records = 20}, 33);
  Result<std::vector<TopKMatch>> result =
      TopKJoin(&base, TopKMetric::kJaccard, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(TopKJoinEdgeTest, EmptyCorpus) {
  RecordSet base;
  Result<std::vector<TopKMatch>> result =
      TopKJoin(&base, TopKMetric::kOverlap, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(TopKJoinEdgeTest, DuplicatesRankFirstUnderJaccard) {
  RecordSet base;
  base.Add(Record::FromTokens({1, 2, 3, 4}));
  base.Add(Record::FromTokens({1, 2, 3, 4}));  // exact duplicate
  base.Add(Record::FromTokens({1, 2, 9, 10}));
  Result<std::vector<TopKMatch>> result =
      TopKJoin(&base, TopKMetric::kJaccard, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].a, 0u);
  EXPECT_EQ(result.value()[0].b, 1u);
  EXPECT_DOUBLE_EQ(result.value()[0].score, 1.0);
}

TEST(TopKJoinEdgeTest, ScoresAreDescending) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 80, .vocabulary = 40}, 34);
  Result<std::vector<TopKMatch>> result =
      TopKJoin(&base, TopKMetric::kDice, 20);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result.value().size(); ++i) {
    EXPECT_GE(result.value()[i - 1].score, result.value()[i].score);
  }
}

}  // namespace
}  // namespace ssjoin
