#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "index/compressed_postings.h"
#include "index/dynamic_index.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

TEST(PostingListTest, AppendMaintainsMaxScore) {
  PostingList list;
  list.Append(1, 0.5);
  list.Append(5, 2.0);
  list.Append(9, 1.0);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list.max_score(), 2.0);
  EXPECT_EQ(list[1].id, 5u);
}

TEST(PostingListTest, InsertOrUpdateMaxInsertsSorted) {
  PostingList list;
  EXPECT_TRUE(list.InsertOrUpdateMax(5, 1.0));
  EXPECT_TRUE(list.InsertOrUpdateMax(2, 1.0));
  EXPECT_TRUE(list.InsertOrUpdateMax(9, 1.0));
  EXPECT_TRUE(list.InsertOrUpdateMax(4, 1.0));
  ASSERT_EQ(list.size(), 4u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].id, list[i].id);
  }
}

TEST(PostingListTest, InsertOrUpdateMaxTakesMax) {
  PostingList list;
  EXPECT_TRUE(list.InsertOrUpdateMax(3, 2.0));
  EXPECT_FALSE(list.InsertOrUpdateMax(3, 1.0));  // update, score stays 2
  EXPECT_DOUBLE_EQ(list[0].score, 2.0);
  EXPECT_FALSE(list.InsertOrUpdateMax(3, 5.0));
  EXPECT_DOUBLE_EQ(list[0].score, 5.0);
  EXPECT_DOUBLE_EQ(list.max_score(), 5.0);
}

TEST(PostingListTest, GallopFindLocatesIds) {
  PostingList list;
  for (uint32_t id = 0; id < 200; id += 3) list.Append(id, 1.0);
  for (uint32_t id = 0; id < 200; ++id) {
    size_t pos = list.GallopFind(id);
    if (id % 3 == 0) {
      ASSERT_NE(pos, SIZE_MAX) << id;
      EXPECT_EQ(list[pos].id, id);
    } else {
      EXPECT_EQ(pos, SIZE_MAX) << id;
    }
  }
}

TEST(PostingListTest, GallopFindHonorsStart) {
  PostingList list;
  for (uint32_t id = 0; id < 50; ++id) list.Append(id, 1.0);
  EXPECT_EQ(list.GallopFind(10, 20), SIZE_MAX);  // behind the start hint
  EXPECT_EQ(list.GallopFind(30, 20), 30u);
}

TEST(PostingListTest, GallopLowerBoundMatchesStdLowerBound) {
  Rng rng(17);
  PostingList list;
  uint32_t id = 0;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 500; ++i) {
    id += 1 + rng.UniformU32(7);
    list.Append(id, 1.0);
    ids.push_back(id);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    uint32_t target = rng.UniformU32(id + 10);
    size_t start = rng.UniformU32(static_cast<uint32_t>(ids.size()));
    size_t expected =
        std::lower_bound(ids.begin() + start, ids.end(), target) -
        ids.begin();
    EXPECT_EQ(list.GallopLowerBound(target, start), expected)
        << "target=" << target << " start=" << start;
  }
}

TEST(PostingListTest, GallopCountsProbes) {
  PostingList list;
  for (uint32_t id = 0; id < 1000; ++id) list.Append(id, 1.0);
  uint64_t cost = 0;
  list.GallopFind(999, 0, &cost);
  EXPECT_GT(cost, 0u);
  EXPECT_LT(cost, 40u);  // logarithmic, not linear
}

TEST(InvertedIndexTest, InsertBuildsLists) {
  InvertedIndex index;
  Record r0 = Record::FromWeightedTokens({{1, 1.0}, {3, 2.0}});
  r0.set_norm(3.0);
  Record r1 = Record::FromWeightedTokens({{3, 5.0}});
  r1.set_norm(5.0);
  index.Plan({0, 1, 0, 2});  // df per token: 1 once, 3 twice
  index.Insert(0, r0);
  index.Insert(1, r1);

  EXPECT_EQ(index.num_entities(), 2u);
  EXPECT_EQ(index.total_postings(), 3u);
  EXPECT_DOUBLE_EQ(index.min_norm(), 3.0);
  ASSERT_FALSE(index.list(3).empty());
  EXPECT_EQ(index.list(3).size(), 2u);
  EXPECT_DOUBLE_EQ(index.list(3).max_score(), 5.0);
  EXPECT_TRUE(index.list(2).empty());
  EXPECT_TRUE(index.list(1000).empty());
}

TEST(InvertedIndexTest, ForEachListAscendingTokens) {
  InvertedIndex index;
  index.Plan({1, 0, 2, 1});
  index.Insert(0, Record::FromTokens({0, 2}));
  index.Insert(1, Record::FromTokens({2, 3}));
  std::vector<TokenId> seen;
  index.ForEachList([&seen](TokenId t, PostingListView list) {
    EXPECT_GT(list.size(), 0u);
    seen.push_back(t);
  });
  EXPECT_EQ(seen, (std::vector<TokenId>{0, 2, 3}));
  EXPECT_EQ(index.num_tokens(), 3u);
}

TEST(DynamicIndexTest, ClusterModeUpdatesInPlace) {
  DynamicIndex index;
  Record a = Record::FromWeightedTokens({{1, 1.0}});
  Record b = Record::FromWeightedTokens({{1, 3.0}, {2, 1.0}});
  index.InsertOrUpdateMax(0, a, 10.0);
  index.InsertOrUpdateMax(0, b, 4.0);
  EXPECT_EQ(index.num_entities(), 1u);
  EXPECT_EQ(index.total_postings(), 2u);  // token 1 updated, token 2 added
  EXPECT_DOUBLE_EQ(index.list(1)->max_score(), 3.0);
  EXPECT_DOUBLE_EQ(index.min_norm(), 4.0);
}

TEST(InvertedIndexTest, EmptyIndex) {
  InvertedIndex index;
  EXPECT_EQ(index.num_entities(), 0u);
  EXPECT_EQ(index.total_postings(), 0u);
  EXPECT_TRUE(std::isinf(index.min_norm()));
  EXPECT_TRUE(index.list(0).empty());
}

TEST(DynamicIndexTest, EmptyIndex) {
  DynamicIndex index;
  EXPECT_EQ(index.num_entities(), 0u);
  EXPECT_EQ(index.total_postings(), 0u);
  EXPECT_TRUE(std::isinf(index.min_norm()));
  EXPECT_EQ(index.list(0), nullptr);
}

TEST(CompressedPostingsTest, RoundTrip) {
  PostingList list;
  Rng rng(23);
  uint32_t id = 0;
  for (int i = 0; i < 300; ++i) {
    id += 1 + rng.UniformU32(100);
    list.Append(id, rng.NextDouble() * 4);
  }
  CompressedPostingList compressed =
      CompressedPostingList::FromPostingList(list.view());
  EXPECT_EQ(compressed.num_postings(), list.size());
  PostingList decoded = compressed.Decode();
  ASSERT_EQ(decoded.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(decoded[i].id, list[i].id);
    EXPECT_FLOAT_EQ(static_cast<float>(decoded[i].score),
                    static_cast<float>(list[i].score));
  }
}

TEST(CompressedPostingsTest, DenseListsCompressWell) {
  PostingList list;
  for (uint32_t id = 0; id < 10000; ++id) list.Append(id, 1.0);
  CompressedPostingList compressed =
      CompressedPostingList::FromPostingList(list.view());
  // Dense deltas are all 1 => 1 byte id + 4 byte score vs 12 bytes raw.
  EXPECT_LT(compressed.byte_size(), compressed.uncompressed_byte_size() / 2);
}

TEST(CompressedPostingsTest, IndexCompressionStats) {
  std::vector<Record> records;
  std::vector<uint64_t> counts(8, 0);
  for (RecordId id = 0; id < 100; ++id) {
    records.push_back(Record::FromTokens({0, 1, id % 7}));
    for (TokenId t : records.back().tokens()) ++counts[t];
  }
  InvertedIndex index;
  index.Plan(counts);
  for (RecordId id = 0; id < 100; ++id) index.Insert(id, records[id]);
  IndexCompressionStats stats = CompressIndex(index);
  EXPECT_EQ(stats.total_postings, index.total_postings());
  EXPECT_GT(stats.compressed_bytes, 0u);
  EXPECT_LT(stats.ratio(), 1.0);
}

TEST(CompressedPostingsTest, EmptyList) {
  PostingList empty;
  CompressedPostingList compressed =
      CompressedPostingList::FromPostingList(empty.view());
  EXPECT_EQ(compressed.num_postings(), 0u);
  EXPECT_EQ(compressed.Decode().size(), 0u);
}

}  // namespace
}  // namespace ssjoin
