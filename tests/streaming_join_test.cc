#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/edit_distance_predicate.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "core/streaming_join.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

using PairVector = std::vector<std::pair<RecordId, RecordId>>;

/// Streams every record of `base` through a StreamingJoin and collects
/// the incremental matches as canonical pairs.
PairVector StreamAll(const RecordSet& base, const Predicate& pred) {
  StreamingJoin stream(pred);
  PairVector pairs;
  for (RecordId id = 0; id < base.size(); ++id) {
    RecordId assigned = stream.Add(
        base.record(id), base.text(id), [&pairs, id](RecordId earlier) {
          pairs.emplace_back(std::min(earlier, id),
                             std::max(earlier, id));
        });
    EXPECT_EQ(assigned, id);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

PairVector Reference(RecordSet base, const Predicate& pred) {
  pred.Prepare(&base);
  PairVector pairs;
  BruteForceJoin(base, pred, [&pairs](RecordId a, RecordId b) {
    pairs.emplace_back(a, b);
  });
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(StreamingJoinTest, MatchesBatchJoinOverlap) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 150, .vocabulary = 70}, 41);
  OverlapPredicate pred(3);
  EXPECT_EQ(StreamAll(base, pred), Reference(base, pred));
}

TEST(StreamingJoinTest, MatchesBatchJoinJaccard) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 60}, 42);
  JaccardPredicate pred(0.6);
  EXPECT_EQ(StreamAll(base, pred), Reference(base, pred));
}

TEST(StreamingJoinTest, MatchesBatchJoinEditDistance) {
  Rng rng(43);
  std::vector<std::string> texts;
  for (int i = 0; i < 90; ++i) {
    texts.push_back(testing_util::RandomAsciiString(rng, 0, 14));
  }
  TokenDictionary dict;
  CorpusBuilderOptions copts;
  copts.normalize = false;
  RecordSet base = BuildQGramCorpus(texts, 3, &dict, copts);
  EditDistancePredicate pred(2, 3);
  EXPECT_EQ(StreamAll(base, pred), Reference(base, pred));
}

TEST(StreamingJoinTest, MatchesBatchJoinHammingTinySets) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 100, .vocabulary = 30, .min_tokens = 1,
       .max_tokens = 5},
      44);
  HammingPredicate pred(4);
  EXPECT_EQ(StreamAll(base, pred), Reference(base, pred));
}

TEST(StreamingJoinTest, MatchesArriveIncrementally) {
  OverlapPredicate pred(2);
  StreamingJoin stream(pred);
  int matches = 0;
  stream.Add(Record::FromTokens({1, 2, 3}), "",
             [&](RecordId) { ++matches; });
  EXPECT_EQ(matches, 0);  // nothing earlier
  stream.Add(Record::FromTokens({1, 2, 9}), "",
             [&](RecordId earlier) {
               EXPECT_EQ(earlier, 0u);
               ++matches;
             });
  EXPECT_EQ(matches, 1);
  stream.Add(Record::FromTokens({50, 51}), "", [&](RecordId) { ++matches; });
  EXPECT_EQ(matches, 1);  // disjoint record matches nothing
  EXPECT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream.stats().pairs, 1u);
}

TEST(StreamingJoinTest, StatsAccumulate) {
  OverlapPredicate pred(2);
  StreamingJoin stream(pred);
  for (int i = 0; i < 10; ++i) {
    stream.Add(Record::FromTokens({1, 2, 3, static_cast<TokenId>(10 + i)}),
               "", [](RecordId) {});
  }
  EXPECT_EQ(stream.stats().pairs, 45u);  // all pairs share {1,2,3}
  EXPECT_GT(stream.stats().index_postings, 0u);
}

}  // namespace
}  // namespace ssjoin
