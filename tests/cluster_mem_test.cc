#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster_mem.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "test_util.h"

namespace ssjoin {
namespace {

std::vector<std::pair<RecordId, RecordId>> Reference(RecordSet set,
                                                     const Predicate& pred) {
  pred.Prepare(&set);
  std::vector<std::pair<RecordId, RecordId>> pairs;
  BruteForceJoin(set, pred, [&pairs](RecordId a, RecordId b) {
    pairs.emplace_back(a, b);
  });
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(ClusterMemTest, RequiresMemoryBudget) {
  RecordSet set = testing_util::MakeRandomRecordSet({.num_records = 10}, 1);
  OverlapPredicate pred(2);
  pred.Prepare(&set);
  ClusterMemOptions options;  // budget left at 0
  Result<JoinStats> result =
      ClusterMemJoin(set, pred, options, [](RecordId, RecordId) {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterMemTest, TinyBudgetStillExact) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 120, .vocabulary = 60}, 2);
  OverlapPredicate pred(3);
  auto expected = Reference(base, pred);

  RecordSet working = base;
  pred.Prepare(&working);
  ClusterMemOptions options;
  options.memory_budget_postings = 25;  // far below the full index
  options.temp_dir = ::testing::TempDir();
  std::vector<std::pair<RecordId, RecordId>> actual;
  Result<JoinStats> result = ClusterMemJoin(
      working, pred, options,
      [&actual](RecordId a, RecordId b) { actual.emplace_back(a, b); });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(ClusterMemTest, Phase1IndexCompressesUnderTightBudget) {
  // Heavily duplicated data (the regime the paper targets): the cluster-
  // level index merges near-duplicates into shared postings, so it stays
  // well below one-posting-per-occurrence. The budget also caps cluster
  // creation, forcing the compression.
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 300, .vocabulary = 200, .duplicate_fraction = 0.7}, 3);
  OverlapPredicate pred(3);
  pred.Prepare(&set);
  uint64_t full_index = set.total_token_occurrences();
  ClusterMemOptions options;
  options.memory_budget_postings = full_index / 10;
  options.temp_dir = ::testing::TempDir();
  Result<JoinStats> result =
      ClusterMemJoin(set, pred, options, [](RecordId, RecordId) {});
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().index_postings, full_index / 2);
}

TEST(ClusterMemTest, CleansUpTempFilesByDefault) {
  namespace fs = std::filesystem;
  std::string dir = ::testing::TempDir() + "/ssjoin_cleanup_test";
  fs::create_directories(dir);
  RecordSet set = testing_util::MakeRandomRecordSet({.num_records = 50}, 4);
  OverlapPredicate pred(2);
  pred.Prepare(&set);
  ClusterMemOptions options;
  options.memory_budget_postings = 50;
  options.temp_dir = dir;
  Result<JoinStats> result =
      ClusterMemJoin(set, pred, options, [](RecordId, RecordId) {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(fs::is_empty(dir));
}

TEST(ClusterMemTest, KeepTempFilesOption) {
  namespace fs = std::filesystem;
  std::string dir = ::testing::TempDir() + "/ssjoin_keep_test";
  fs::create_directories(dir);
  RecordSet set = testing_util::MakeRandomRecordSet({.num_records = 50}, 5);
  OverlapPredicate pred(2);
  pred.Prepare(&set);
  ClusterMemOptions options;
  options.memory_budget_postings = 50;
  options.temp_dir = dir;
  options.keep_temp_files = true;
  Result<JoinStats> result =
      ClusterMemJoin(set, pred, options, [](RecordId, RecordId) {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(fs::is_empty(dir));
  fs::remove_all(dir);
}

TEST(ClusterMemTest, CleanErrorWhenTempDirIsNotADirectory) {
  namespace fs = std::filesystem;
  // temp_dir names a regular file: every spill-file open fails with a
  // clean Status (never a crash), and the RAII guards fire on the early
  // return without having anything to delete.
  std::string bogus = ::testing::TempDir() + "/ssjoin_not_a_dir";
  { std::ofstream(bogus) << "x"; }
  RecordSet set = testing_util::MakeRandomRecordSet({.num_records = 20}, 7);
  OverlapPredicate pred(2);
  pred.Prepare(&set);
  ClusterMemOptions options;
  options.memory_budget_postings = 50;
  options.temp_dir = bogus;
  Result<JoinStats> result =
      ClusterMemJoin(set, pred, options, [](RecordId, RecordId) {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_TRUE(fs::is_regular_file(bogus));  // untouched by the guards
  fs::remove(bogus);
}

TEST(ClusterMemTest, ExplicitClusterOverridesRespected) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 100, .vocabulary = 50}, 6);
  OverlapPredicate pred(3);
  auto expected = Reference(base, pred);

  RecordSet working = base;
  pred.Prepare(&working);
  ClusterMemOptions options;
  options.memory_budget_postings = 200;
  options.temp_dir = ::testing::TempDir();
  options.cluster.max_clusters = 5;
  options.cluster.max_cluster_size = 40;
  std::vector<std::pair<RecordId, RecordId>> actual;
  Result<JoinStats> result = ClusterMemJoin(
      working, pred, options,
      [&actual](RecordId a, RecordId b) { actual.emplace_back(a, b); });
  ASSERT_TRUE(result.ok());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(ClusterMemTest, PresortOffStillExact) {
  RecordSet base = testing_util::MakeRandomRecordSet(
      {.num_records = 90, .vocabulary = 45}, 7);
  OverlapPredicate pred(3);
  auto expected = Reference(base, pred);

  RecordSet working = base;
  pred.Prepare(&working);
  ClusterMemOptions options;
  options.memory_budget_postings = 60;
  options.temp_dir = ::testing::TempDir();
  options.presort = false;
  std::vector<std::pair<RecordId, RecordId>> actual;
  Result<JoinStats> result = ClusterMemJoin(
      working, pred, options,
      [&actual](RecordId a, RecordId b) { actual.emplace_back(a, b); });
  ASSERT_TRUE(result.ok());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace ssjoin
