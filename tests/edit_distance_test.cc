#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "text/edit_distance.h"
#include "text/token_dictionary.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("abc", "abd"), 1u);
  EXPECT_EQ(EditDistance("abc", "acb"), 2u);  // unit-cost (no transpose)
}

TEST(EditDistanceTest, Symmetric) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::string a = testing_util::RandomAsciiString(rng, 0, 15);
    std::string b = testing_util::RandomAsciiString(rng, 0, 15);
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, TriangleInequality) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    std::string a = testing_util::RandomAsciiString(rng, 0, 10);
    std::string b = testing_util::RandomAsciiString(rng, 0, 10);
    std::string c = testing_util::RandomAsciiString(rng, 0, 10);
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

class BandedEditDistanceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BandedEditDistanceTest, AgreesWithFullDp) {
  size_t k = GetParam();
  Rng rng(100 + k);
  for (int i = 0; i < 400; ++i) {
    std::string a = testing_util::RandomAsciiString(rng, 0, 20);
    std::string b;
    if (rng.Bernoulli(0.5)) {
      // Derive b from a with a few edits so distances near k are common.
      b = a;
      int edits = rng.UniformInt(0, static_cast<int>(k) + 2);
      for (int e = 0; e < edits; ++e) {
        if (b.empty() || rng.Bernoulli(0.3)) {
          b.insert(b.begin() + rng.UniformU32(b.size() + 1),
                   static_cast<char>('a' + rng.UniformU32(4)));
        } else if (rng.Bernoulli(0.5)) {
          b[rng.UniformU32(b.size())] =
              static_cast<char>('a' + rng.UniformU32(4));
        } else {
          b.erase(rng.UniformU32(b.size()), 1);
        }
      }
    } else {
      b = testing_util::RandomAsciiString(rng, 0, 20);
    }
    bool expected = EditDistance(a, b) <= k;
    EXPECT_EQ(EditDistanceAtMost(a, b, k), expected)
        << "a=" << a << " b=" << b << " k=" << k
        << " dist=" << EditDistance(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, BandedEditDistanceTest,
                         ::testing::Values(0, 1, 2, 3, 5, 10));

TEST(EditDistanceAtMostTest, LengthGapShortCircuits) {
  EXPECT_FALSE(EditDistanceAtMost("abcdefgh", "a", 3));
  EXPECT_TRUE(EditDistanceAtMost("abcd", "a", 3));
}

TEST(QGramBoundTest, TheoremHoldsOnRandomPairs) {
  // If edit-distance(a, b) <= k then the padded q-gram multisets share at
  // least max(|a|,|b|) - 1 - q(k-1) grams (Section 5.2.3). Verify against
  // actual shared-gram counts.
  Rng rng(55);
  const int q = 3;
  QGramTokenizer tok(q);
  for (int i = 0; i < 300; ++i) {
    std::string a = testing_util::RandomAsciiString(rng, 4, 20);
    std::string b = a;
    int k = rng.UniformInt(1, 3);
    for (int e = 0; e < k; ++e) {
      if (!b.empty()) {
        b[rng.UniformU32(b.size())] =
            static_cast<char>('a' + rng.UniformU32(26));
      }
    }
    ASSERT_LE(EditDistance(a, b), static_cast<size_t>(k));

    TokenDictionary dict;
    auto grams_a = tok.Tokenize(a, &dict);
    auto grams_b = tok.Tokenize(b, &dict);
    // Count shared grams with multiplicity (min of counts).
    long shared = 0;
    size_t ia = 0, ib = 0;
    while (ia < grams_a.size() && ib < grams_b.size()) {
      if (grams_a[ia].first < grams_b[ib].first) {
        ++ia;
      } else if (grams_a[ia].first > grams_b[ib].first) {
        ++ib;
      } else {
        shared += std::min(grams_a[ia].second, grams_b[ib].second);
        ++ia;
        ++ib;
      }
    }
    long bound = QGramCountLowerBound(a.size(), b.size(), q, k);
    EXPECT_GE(shared, bound) << "a=" << a << " b=" << b << " k=" << k;
  }
}

TEST(QGramBoundTest, VacuousForTinyStrings) {
  EXPECT_LE(QGramCountLowerBound(2, 2, 3, 2), 0);
  EXPECT_GT(QGramCountLowerBound(20, 20, 3, 2), 0);
}

}  // namespace
}  // namespace ssjoin
