// Cross-algorithm integration tests: every algorithm must produce exactly
// the brute-force join result, for every predicate, over randomized
// corpora. This is the paper's core correctness claim ("our goal is to
// return exact answers").

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_coefficient_predicate.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

using testing_util::MakeRandomRecordSet;
using testing_util::RandomSetOptions;

using PairVector = std::vector<std::pair<RecordId, RecordId>>;

PairVector ReferenceJoin(RecordSet* records, const Predicate& pred) {
  pred.Prepare(records);
  PairVector pairs;
  BruteForceJoin(*records, pred,
                 [&pairs](RecordId a, RecordId b) { pairs.emplace_back(a, b); });
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

// Algorithms applicable to any predicate.
const JoinAlgorithm kGeneralAlgorithms[] = {
    JoinAlgorithm::kProbeCount,     JoinAlgorithm::kProbeOptMerge,
    JoinAlgorithm::kProbeOnline,    JoinAlgorithm::kProbeSort,
    JoinAlgorithm::kProbeCluster,   JoinAlgorithm::kPairCount,
    JoinAlgorithm::kPairCountOptMerge, JoinAlgorithm::kClusterMem,
};

// Algorithms requiring a constant threshold (and static weights for
// Word-Groups).
const JoinAlgorithm kConstantThresholdAlgorithms[] = {
    JoinAlgorithm::kProbeStopwords,
    JoinAlgorithm::kWordGroups,
    JoinAlgorithm::kWordGroupsOptMerge,
};

JoinOptions DefaultOptions() {
  JoinOptions options;
  options.cluster_mem.memory_budget_postings = 300;
  options.cluster_mem.temp_dir = ::testing::TempDir();
  return options;
}

void ExpectAlgorithmMatchesReference(const RecordSet& base,
                                     const Predicate& pred,
                                     JoinAlgorithm algorithm,
                                     const JoinOptions& options) {
  RecordSet reference_set = base;
  PairVector expected = ReferenceJoin(&reference_set, pred);

  RecordSet working = base;
  Result<PairVector> actual = JoinToPairs(&working, pred, algorithm, options);
  ASSERT_TRUE(actual.ok()) << JoinAlgorithmName(algorithm) << ": "
                           << actual.status().ToString();
  EXPECT_EQ(actual.value(), expected)
      << JoinAlgorithmName(algorithm) << " diverged from brute force ("
      << pred.name() << ", expected " << expected.size() << " pairs, got "
      << actual.value().size() << ")";
}

struct EquivalenceCase {
  std::string label;
  uint64_t seed;
  RandomSetOptions shape;
};

std::vector<EquivalenceCase> MakeCases() {
  std::vector<EquivalenceCase> cases;
  RandomSetOptions dense;  // heavy overlap, small vocab
  dense.num_records = 150;
  dense.vocabulary = 60;
  cases.push_back({"dense", 11, dense});

  RandomSetOptions sparse;  // little overlap
  sparse.num_records = 180;
  sparse.vocabulary = 900;
  sparse.duplicate_fraction = 0.1;
  cases.push_back({"sparse", 22, sparse});

  RandomSetOptions skewed;  // few very hot tokens
  skewed.num_records = 160;
  skewed.vocabulary = 200;
  skewed.zipf_exponent = 1.4;
  cases.push_back({"skewed", 33, skewed});

  RandomSetOptions dupheavy;  // near-duplicate clusters
  dupheavy.num_records = 140;
  dupheavy.vocabulary = 150;
  dupheavy.duplicate_fraction = 0.6;
  cases.push_back({"dupheavy", 44, dupheavy});
  return cases;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceTest, OverlapPredicateAllAlgorithms) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed);
  JoinOptions options = DefaultOptions();
  for (double threshold : {2.0, 4.0, 7.0}) {
    OverlapPredicate pred(threshold);
    for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
    for (JoinAlgorithm algorithm : kConstantThresholdAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
  }
}

TEST_P(EquivalenceTest, WeightedOverlapAllAlgorithms) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed + 1);
  Rng rng(GetParam().seed + 100);
  std::vector<double> weights(base.vocabulary_size());
  for (double& w : weights) w = 0.25 + rng.NextDouble() * 3.0;
  OverlapPredicate pred(3.5, weights);
  JoinOptions options = DefaultOptions();
  for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
    ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
  }
  for (JoinAlgorithm algorithm : kConstantThresholdAlgorithms) {
    ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
  }
}

TEST_P(EquivalenceTest, JaccardPredicate) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed + 2);
  JoinOptions options = DefaultOptions();
  for (double fraction : {0.3, 0.6, 0.85}) {
    JaccardPredicate pred(fraction);
    for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
  }
}

TEST_P(EquivalenceTest, WeightedJaccardPredicate) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed + 3);
  Rng rng(GetParam().seed + 200);
  std::vector<double> weights(base.vocabulary_size());
  for (double& w : weights) w = 0.5 + rng.NextDouble() * 2.0;
  JaccardPredicate pred(0.55, weights);
  JoinOptions options = DefaultOptions();
  for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
    ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
  }
}

TEST_P(EquivalenceTest, CosinePredicate) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed + 4);
  JoinOptions options = DefaultOptions();
  for (double fraction : {0.35, 0.7}) {
    CosinePredicate pred(fraction);
    for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
  }
}

TEST_P(EquivalenceTest, DicePredicate) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed + 5);
  JoinOptions options = DefaultOptions();
  for (double fraction : {0.4, 0.75}) {
    DicePredicate pred(fraction);
    for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
  }
}

TEST_P(EquivalenceTest, OverlapCoefficientPredicate) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed + 6);
  JoinOptions options = DefaultOptions();
  for (double fraction : {0.5, 0.9}) {
    OverlapCoefficientPredicate pred(fraction);
    for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
  }
}

TEST_P(EquivalenceTest, HammingPredicate) {
  RandomSetOptions shape = GetParam().shape;
  shape.min_tokens = 1;  // include tiny sets: the short-record fallback
  RecordSet base = MakeRandomRecordSet(shape, GetParam().seed + 7);
  JoinOptions options = DefaultOptions();
  for (double k : {3.0, 8.0}) {
    HammingPredicate pred(k);
    for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
  }
}

TEST_P(EquivalenceTest, WordGroupsDepthFirstMiner) {
  RecordSet base = MakeRandomRecordSet(GetParam().shape, GetParam().seed + 8);
  JoinOptions options = DefaultOptions();
  options.word_groups.miner = WordGroupsMiner::kDepthFirst;
  for (double threshold : {3.0, 6.0}) {
    OverlapPredicate pred(threshold);
    ExpectAlgorithmMatchesReference(base, pred, JoinAlgorithm::kWordGroups,
                                    options);
    ExpectAlgorithmMatchesReference(base, pred,
                                    JoinAlgorithm::kWordGroupsOptMerge,
                                    options);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EquivalenceTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.label;
    });

// Edit distance runs on q-gram corpora built from real strings.
TEST(EditDistanceEquivalenceTest, QGramJoinMatchesBruteForce) {
  Rng rng(77);
  std::vector<std::string> texts;
  for (int i = 0; i < 120; ++i) {
    if (!texts.empty() && rng.Bernoulli(0.5)) {
      // Perturbed copy: guarantees pairs within small edit distance.
      std::string base = texts[rng.UniformU32(texts.size())];
      int edits = rng.UniformInt(0, 3);
      for (int e = 0; e < edits && !base.empty(); ++e) {
        uint32_t pos = rng.UniformU32(static_cast<uint32_t>(base.size()));
        base[pos] = static_cast<char>('a' + rng.UniformU32(26));
      }
      texts.push_back(base);
    } else {
      texts.push_back(testing_util::RandomAsciiString(rng, 1, 24));
    }
  }
  for (int k : {1, 2, 3}) {
    TokenDictionary dict;
    CorpusBuilderOptions copts;
    copts.normalize = false;
    RecordSet base = BuildQGramCorpus(texts, /*q=*/3, &dict, copts);
    EditDistancePredicate pred(k, 3);
    JoinOptions options = DefaultOptions();
    for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
      ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
    }
  }
}

// Degenerate corpora must not crash or diverge.
TEST(EquivalenceEdgeCases, EmptyAndTinyInputs) {
  JoinOptions options = DefaultOptions();
  OverlapPredicate pred(2.0);

  RecordSet empty;
  for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
    ExpectAlgorithmMatchesReference(empty, pred, algorithm, options);
  }

  RecordSet single;
  single.Add(Record::FromTokens({1, 2, 3}), "a b c");
  for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
    ExpectAlgorithmMatchesReference(single, pred, algorithm, options);
  }

  RecordSet identical;
  for (int i = 0; i < 5; ++i) {
    identical.Add(Record::FromTokens({7, 8, 9, 10}), "same tokens");
  }
  for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
    ExpectAlgorithmMatchesReference(identical, pred, algorithm, options);
  }
  for (JoinAlgorithm algorithm : kConstantThresholdAlgorithms) {
    ExpectAlgorithmMatchesReference(identical, pred, algorithm, options);
  }
}

// A threshold larger than any record: no pairs, no crashes.
TEST(EquivalenceEdgeCases, UnreachableThreshold) {
  RecordSet base = MakeRandomRecordSet({}, 5);
  OverlapPredicate pred(1000.0);
  JoinOptions options = DefaultOptions();
  for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
    ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
  }
}

// Records containing duplicate-free single tokens and empty-ish records.
TEST(EquivalenceEdgeCases, SingleTokenRecords) {
  RecordSet base;
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    base.Add(Record::FromTokens({rng.UniformU32(10)}), "x");
  }
  OverlapPredicate pred(1.0);
  JoinOptions options = DefaultOptions();
  for (JoinAlgorithm algorithm : kGeneralAlgorithms) {
    ExpectAlgorithmMatchesReference(base, pred, algorithm, options);
  }
}

// ClusterMem must agree with brute force across the whole memory range,
// from "barely any clusters" to "effectively unlimited".
TEST(ClusterMemEquivalence, MemoryBudgetSweep) {
  RandomSetOptions shape;
  shape.num_records = 180;
  shape.vocabulary = 100;
  RecordSet base = MakeRandomRecordSet(shape, 123);
  OverlapPredicate pred(3.0);

  RecordSet reference_set = base;
  PairVector expected = ReferenceJoin(&reference_set, pred);

  for (uint64_t budget : {40, 120, 400, 1500, 1000000}) {
    JoinOptions options = DefaultOptions();
    options.cluster_mem.memory_budget_postings = budget;
    RecordSet working = base;
    Result<PairVector> actual =
        JoinToPairs(&working, pred, JoinAlgorithm::kClusterMem, options);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual.value(), expected) << "budget=" << budget;
  }
}

}  // namespace
}  // namespace ssjoin
