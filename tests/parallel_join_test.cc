// Parallel-vs-serial equivalence: with JoinOptions::num_threads > 1 the
// probe-family and prefix-filter joins fan record probes across a thread
// pool, and BandPartitionedJoin joins partitions concurrently. Every
// parallel run must produce exactly the serial pair set, and the merged
// stats must not depend on scheduling.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cosine_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "test_util.h"
#include "text/token_dictionary.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

using testing_util::MakeRandomRecordSet;
using testing_util::RandomSetOptions;

using PairVector = std::vector<std::pair<RecordId, RecordId>>;

struct RunResult {
  PairVector emitted;  // raw emission order, not sorted
  JoinStats stats;
};

RunResult RunWithThreads(const RecordSet& base, const Predicate& pred,
                         JoinAlgorithm algorithm, int num_threads) {
  RecordSet working = base;
  JoinOptions options;
  options.num_threads = num_threads;
  RunResult out;
  Result<JoinStats> result = RunJoin(
      &working, pred, algorithm, options,
      [&out](RecordId a, RecordId b) { out.emitted.emplace_back(a, b); });
  EXPECT_TRUE(result.ok()) << JoinAlgorithmName(algorithm) << ": "
                           << result.status().ToString();
  if (result.ok()) out.stats = result.value();
  return out;
}

void ExpectStatsEq(const JoinStats& a, const JoinStats& b,
                   const std::string& label) {
  EXPECT_EQ(a.pairs, b.pairs) << label;
  EXPECT_EQ(a.candidates_verified, b.candidates_verified) << label;
  EXPECT_EQ(a.index_postings, b.index_postings) << label;
  EXPECT_EQ(a.aggregated_pairs, b.aggregated_pairs) << label;
  EXPECT_EQ(a.groups, b.groups) << label;
  EXPECT_EQ(a.merge.merges, b.merge.merges) << label;
  EXPECT_EQ(a.merge.heap_pops, b.merge.heap_pops) << label;
  EXPECT_EQ(a.merge.gallop_probes, b.merge.gallop_probes) << label;
  EXPECT_EQ(a.merge.candidates, b.merge.candidates) << label;
  EXPECT_EQ(a.merge.lists_direct, b.merge.lists_direct) << label;
  EXPECT_EQ(a.merge.lists_merged, b.merge.lists_merged) << label;
}

RecordSet MakeCorpus(uint64_t seed) {
  RandomSetOptions shape;
  shape.num_records = 220;
  shape.vocabulary = 90;
  shape.duplicate_fraction = 0.35;
  return MakeRandomRecordSet(shape, seed);
}

// Offline (two-pass) probe variants build the full index before probing,
// so the parallel run sees exactly the serial per-probe work: pairs AND
// every counter must match the serial run bit for bit.
TEST(ParallelProbeTest, OfflineVariantsMatchSerialExactly) {
  RecordSet base = MakeCorpus(501);
  OverlapPredicate overlap(3.0);
  JaccardPredicate jaccard(0.6);
  CosinePredicate cosine(0.5);
  const Predicate* predicates[] = {&overlap, &jaccard, &cosine};
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kProbeCount, JoinAlgorithm::kProbeOptMerge}) {
    for (const Predicate* pred : predicates) {
      RunResult serial = RunWithThreads(base, *pred, algorithm, 1);
      for (int threads : {2, 8}) {
        RunResult parallel = RunWithThreads(base, *pred, algorithm, threads);
        std::string label = std::string(JoinAlgorithmName(algorithm)) + "/" +
                            pred->name() + "/t" + std::to_string(threads);
        EXPECT_EQ(testing_util::SortedPairs(parallel.emitted),
                  testing_util::SortedPairs(serial.emitted))
            << label;
        ExpectStatsEq(parallel.stats, serial.stats, label);
      }
      // Determinism across thread counts: the merged emission order is
      // globally sorted, so 2- and 8-thread runs are byte-identical.
      RunResult two = RunWithThreads(base, *pred, algorithm, 2);
      RunResult eight = RunWithThreads(base, *pred, algorithm, 8);
      EXPECT_EQ(two.emitted, eight.emitted) << pred->name();
    }
  }
}

// Online and presorted variants probe against a partially built index in
// serial mode; the parallel driver always probes the full index, which
// changes counters but never the result pairs.
TEST(ParallelProbeTest, OnlineVariantsMatchSerialPairs) {
  RecordSet base = MakeCorpus(502);
  JaccardPredicate pred(0.55);
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kProbeOnline, JoinAlgorithm::kProbeSort}) {
    RunResult serial = RunWithThreads(base, pred, algorithm, 1);
    RunResult two = RunWithThreads(base, pred, algorithm, 2);
    RunResult eight = RunWithThreads(base, pred, algorithm, 8);
    EXPECT_EQ(testing_util::SortedPairs(two.emitted),
              testing_util::SortedPairs(serial.emitted))
        << JoinAlgorithmName(algorithm);
    EXPECT_EQ(two.emitted, eight.emitted) << JoinAlgorithmName(algorithm);
    ExpectStatsEq(two.stats, eight.stats, JoinAlgorithmName(algorithm));
  }
}

TEST(ParallelProbeTest, StopwordsVariantMatchesSerial) {
  RecordSet base = MakeCorpus(503);
  OverlapPredicate pred(4.0);  // constant threshold, as stopwords requires
  RunResult serial =
      RunWithThreads(base, pred, JoinAlgorithm::kProbeStopwords, 1);
  for (int threads : {2, 8}) {
    RunResult parallel =
        RunWithThreads(base, pred, JoinAlgorithm::kProbeStopwords, threads);
    EXPECT_EQ(testing_util::SortedPairs(parallel.emitted),
              testing_util::SortedPairs(serial.emitted));
    ExpectStatsEq(parallel.stats, serial.stats,
                  "stopwords/t" + std::to_string(threads));
  }
}

// The stopwords variant rejects predicates without a constant threshold;
// the parallel path must report the identical error, not crash or join.
TEST(ParallelProbeTest, StopwordsRejectionMatchesSerial) {
  RecordSet base = MakeCorpus(504);
  JaccardPredicate pred(0.6);
  JoinOptions serial_options;
  JoinOptions parallel_options;
  parallel_options.num_threads = 4;
  RecordSet s = base;
  RecordSet p = base;
  PairSink ignore = [](RecordId, RecordId) {};
  Result<JoinStats> serial =
      RunJoin(&s, pred, JoinAlgorithm::kProbeStopwords, serial_options,
              ignore);
  Result<JoinStats> parallel =
      RunJoin(&p, pred, JoinAlgorithm::kProbeStopwords, parallel_options,
              ignore);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().ToString(), serial.status().ToString());
}

TEST(ParallelPrefixFilterTest, MatchesSerial) {
  RecordSet base = MakeCorpus(505);
  OverlapPredicate overlap(3.0);
  JaccardPredicate jaccard(0.6);
  CosinePredicate cosine(0.45);
  const Predicate* predicates[] = {&overlap, &jaccard, &cosine};
  for (const Predicate* pred : predicates) {
    RunResult serial =
        RunWithThreads(base, *pred, JoinAlgorithm::kPrefixFilter, 1);
    RunResult two =
        RunWithThreads(base, *pred, JoinAlgorithm::kPrefixFilter, 2);
    RunResult eight =
        RunWithThreads(base, *pred, JoinAlgorithm::kPrefixFilter, 8);
    EXPECT_EQ(testing_util::SortedPairs(two.emitted),
              testing_util::SortedPairs(serial.emitted))
        << pred->name();
    EXPECT_EQ(two.emitted, eight.emitted) << pred->name();
    ExpectStatsEq(two.stats, eight.stats, pred->name());
    EXPECT_EQ(two.stats.pairs, serial.stats.pairs) << pred->name();
    EXPECT_EQ(two.stats.candidates_verified, serial.stats.candidates_verified)
        << pred->name();
  }
}

RecordSet MakeQGramCorpus(uint64_t seed, TokenDictionary* dict) {
  Rng rng(seed);
  std::vector<std::string> texts;
  for (int i = 0; i < 110; ++i) {
    if (!texts.empty() && rng.Bernoulli(0.45)) {
      std::string base = texts[rng.UniformU32(texts.size())];
      if (!base.empty()) {
        base[rng.UniformU32(static_cast<uint32_t>(base.size()))] =
            static_cast<char>('a' + rng.UniformU32(26));
      }
      texts.push_back(base);
    } else {
      texts.push_back(testing_util::RandomAsciiString(rng, 2, 20));
    }
  }
  CorpusBuilderOptions copts;
  copts.normalize = false;
  return BuildQGramCorpus(texts, /*q=*/3, dict, copts);
}

// Edit distance exercises the short-record fallback after the parallel
// phase: fallback pairs must still appear exactly once.
TEST(ParallelProbeTest, EditDistanceQGramsMatchSerial) {
  TokenDictionary dict;
  RecordSet base = MakeQGramCorpus(506, &dict);
  EditDistancePredicate pred(2, 3);
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kProbeCount, JoinAlgorithm::kProbeOptMerge}) {
    RunResult serial = RunWithThreads(base, pred, algorithm, 1);
    for (int threads : {2, 8}) {
      RunResult parallel = RunWithThreads(base, pred, algorithm, threads);
      EXPECT_EQ(testing_util::SortedPairs(parallel.emitted),
                testing_util::SortedPairs(serial.emitted))
          << JoinAlgorithmName(algorithm) << "/t" << threads;
      ExpectStatsEq(parallel.stats, serial.stats,
                    JoinAlgorithmName(algorithm));
    }
  }
}

TEST(ParallelBandPartitionTest, MatchesSerialAcrossThreadCounts) {
  TokenDictionary dict;
  RecordSet base = MakeQGramCorpus(507, &dict);
  const double k = 2;
  EditDistancePredicate pred(static_cast<int>(k), 3);
  for (BandStrategy strategy : {BandStrategy::kSimple, BandStrategy::kGreedy,
                                BandStrategy::kOptimal}) {
    PairVector serial_pairs;
    RecordSet serial_set = base;
    Result<JoinStats> serial = BandPartitionedJoin(
        &serial_set, pred, k, strategy,
        [&serial_pairs](RecordId a, RecordId b) {
          serial_pairs.emplace_back(a, b);
        });
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : {2, 8}) {
      PairVector parallel_pairs;
      RecordSet parallel_set = base;
      Result<JoinStats> parallel = BandPartitionedJoin(
          &parallel_set, pred, k, strategy,
          [&parallel_pairs](RecordId a, RecordId b) {
            parallel_pairs.emplace_back(a, b);
          },
          threads);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      // Partition buffers replay in partition order: the emission
      // sequence is identical to serial, not merely the same set.
      EXPECT_EQ(parallel_pairs, serial_pairs)
          << "strategy=" << static_cast<int>(strategy)
          << " threads=" << threads;
      ExpectStatsEq(parallel.value(), serial.value(),
                    "band/t" + std::to_string(threads));
    }
  }
}

TEST(ParallelJoinEdgeCaseTest, EmptyCorpus) {
  RecordSet base;
  JaccardPredicate pred(0.5);
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kProbeCount, JoinAlgorithm::kProbeOptMerge,
        JoinAlgorithm::kPrefixFilter}) {
    RunResult result = RunWithThreads(base, pred, algorithm, 8);
    EXPECT_TRUE(result.emitted.empty()) << JoinAlgorithmName(algorithm);
    EXPECT_EQ(result.stats.pairs, 0u);
  }
}

TEST(ParallelJoinEdgeCaseTest, SingleRecordCorpus) {
  RandomSetOptions shape;
  shape.num_records = 1;
  shape.duplicate_fraction = 0;
  RecordSet base = MakeRandomRecordSet(shape, 508);
  JaccardPredicate pred(0.5);
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kProbeCount, JoinAlgorithm::kProbeOptMerge,
        JoinAlgorithm::kPrefixFilter}) {
    RunResult result = RunWithThreads(base, pred, algorithm, 8);
    EXPECT_TRUE(result.emitted.empty()) << JoinAlgorithmName(algorithm);
  }
}

TEST(ParallelJoinEdgeCaseTest, MoreThreadsThanRecords) {
  RandomSetOptions shape;
  shape.num_records = 5;
  RecordSet base = MakeRandomRecordSet(shape, 509);
  OverlapPredicate pred(2.0);
  RunResult serial = RunWithThreads(base, pred, JoinAlgorithm::kProbeCount, 1);
  RunResult parallel =
      RunWithThreads(base, pred, JoinAlgorithm::kProbeCount, 16);
  EXPECT_EQ(testing_util::SortedPairs(parallel.emitted),
            testing_util::SortedPairs(serial.emitted));
}

}  // namespace
}  // namespace ssjoin
