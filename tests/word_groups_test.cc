#include <gtest/gtest.h>

#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "test_util.h"

namespace ssjoin {
namespace {

TEST(WordGroupsTest, RejectsPairDependentThresholds) {
  RecordSet set = testing_util::MakeRandomRecordSet({.num_records = 20}, 1);
  JaccardPredicate pred(0.5);
  pred.Prepare(&set);
  Result<JoinStats> result =
      WordGroupsJoin(set, pred, {}, [](RecordId, RecordId) {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WordGroupsTest, NoDuplicatePairsDespiteOverlappingGroups) {
  // Records sharing 2T tokens appear in C(2T, T) itemsets; the join layer
  // must still emit each pair once.
  RecordSet set;
  set.Add(Record::FromTokens({0, 1, 2, 3, 4, 5}));
  set.Add(Record::FromTokens({0, 1, 2, 3, 4, 5}));
  set.Add(Record::FromTokens({10, 11}));
  OverlapPredicate pred(3);
  pred.Prepare(&set);
  int emissions = 0;
  Result<JoinStats> result = WordGroupsJoin(
      set, pred, {}, [&emissions](RecordId a, RecordId b) {
        EXPECT_EQ(a, 0u);
        EXPECT_EQ(b, 1u);
        ++emissions;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(emissions, 1);
  EXPECT_GE(result.value().groups, 1u);
}

TEST(WordGroupsTest, ThresholdOptimizationPreservesOutput) {
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 100, .vocabulary = 40, .zipf_exponent = 1.3}, 5);
  OverlapPredicate pred(4);
  pred.Prepare(&set);

  auto run = [&](bool optimized) {
    WordGroupsOptions options;
    options.threshold_optimized = optimized;
    std::vector<std::pair<RecordId, RecordId>> pairs;
    Result<JoinStats> result = WordGroupsJoin(
        set, pred, options,
        [&pairs](RecordId a, RecordId b) { pairs.emplace_back(a, b); });
    EXPECT_TRUE(result.ok());
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(WordGroupsTest, DepthFirstMinerSameOutput) {
  RecordSet set = testing_util::MakeRandomRecordSet(
      {.num_records = 90, .vocabulary = 45}, 6);
  OverlapPredicate pred(3);
  pred.Prepare(&set);
  auto run = [&](WordGroupsMiner miner) {
    WordGroupsOptions options;
    options.miner = miner;
    std::vector<std::pair<RecordId, RecordId>> pairs;
    Result<JoinStats> result = WordGroupsJoin(
        set, pred, options,
        [&pairs](RecordId a, RecordId b) { pairs.emplace_back(a, b); });
    EXPECT_TRUE(result.ok());
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  EXPECT_EQ(run(WordGroupsMiner::kApriori),
            run(WordGroupsMiner::kDepthFirst));
}

TEST(WordGroupsTest, WeightedOverlapSupported) {
  RecordSet set;
  set.Add(Record::FromTokens({0, 1}));
  set.Add(Record::FromTokens({0, 2}));
  std::vector<double> weights = {5.0, 1.0, 1.0};
  OverlapPredicate pred(4, weights);
  pred.Prepare(&set);
  int emissions = 0;
  Result<JoinStats> result = WordGroupsJoin(
      set, pred, {}, [&emissions](RecordId, RecordId) { ++emissions; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(emissions, 1);  // shared token 0 weighs 5 >= 4
}

}  // namespace
}  // namespace ssjoin
