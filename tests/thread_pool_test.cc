#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ssjoin {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTotal = 1000;
  std::vector<std::atomic<int>> hits(kTotal);
  pool.ParallelFor(kTotal, /*chunk=*/7,
                   [&](size_t begin, size_t end, int /*worker*/) {
                     for (size_t i = begin; i < end; ++i) {
                       hits[i].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  for (size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroTotalRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 16, [&](size_t, size_t, int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SmallTotalRunsInlineOnCaller) {
  ThreadPool pool(4);
  std::vector<int> workers;
  // total <= chunk: a single inline call on the caller as worker 0.
  pool.ParallelFor(5, 16, [&](size_t begin, size_t end, int worker) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    workers.push_back(worker);
  });
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0], 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  uint64_t sum = 0;  // no synchronization: everything runs on the caller
  pool.ParallelFor(100, 8, [&](size_t begin, size_t end, int worker) {
    EXPECT_EQ(worker, 0);
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> sum{0};
    size_t total = 128 + static_cast<size_t>(round) * 13;
    pool.ParallelFor(total, 5, [&](size_t begin, size_t end, int /*worker*/) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), total * (total - 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<size_t> seen;
  pool.ParallelFor(3, 1, [&](size_t begin, size_t end, int /*worker*/) {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = begin; i < end; ++i) seen.insert(i);
  });
  EXPECT_EQ(seen, (std::set<size_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(4);
  std::atomic<bool> in_range{true};
  pool.ParallelFor(500, 3, [&](size_t, size_t, int worker) {
    if (worker < 0 || worker >= 4) in_range = false;
  });
  EXPECT_TRUE(in_range.load());
}

TEST(ThreadPoolTest, RethrowsWorkerExceptionOnCaller) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(1000, 3, [&](size_t begin, size_t end, int /*worker*/) {
      for (size_t i = begin; i < end; ++i) {
        if (i == 437) throw std::runtime_error("boom at 437");
      }
      ran.fetch_add(static_cast<int>(end - begin),
                    std::memory_order_relaxed);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 437");
  }
  // Chunks claimed after the failure are skipped, never half-run.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPoolTest, RethrowsOnInlinePathToo) {
  ThreadPool pool(1);  // no background workers: the guarded inline path
  EXPECT_THROW(
      pool.ParallelFor(10, 100,
                       [](size_t, size_t, int) {
                         throw std::runtime_error("inline boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, UsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100, 1,
                                [](size_t, size_t, int) {
                                  throw std::runtime_error("first job");
                                }),
               std::runtime_error);
  // The pool must have fully drained the failed job and accept new work.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, 4, [&](size_t begin, size_t end, int /*worker*/) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, FirstExceptionWinsUnderConcurrentThrows) {
  ThreadPool pool(4);
  // Every chunk throws; exactly one exception must surface (no terminate,
  // no leak of the others).
  EXPECT_THROW(pool.ParallelFor(64, 1,
                                [](size_t begin, size_t, int) {
                                  throw static_cast<int>(begin);
                                }),
               int);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

}  // namespace
}  // namespace ssjoin
