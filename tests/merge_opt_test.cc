#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/merge_opt.h"
#include "util/rng.h"

namespace ssjoin {
namespace {

/// Random posting lists with controllable density.
std::vector<PostingList> MakeLists(Rng& rng, int num_lists, uint32_t universe,
                                   double density, bool unit_scores) {
  std::vector<PostingList> lists(num_lists);
  for (PostingList& list : lists) {
    for (uint32_t id = 0; id < universe; ++id) {
      if (rng.Bernoulli(density)) {
        list.Append(id, unit_scores ? 1.0 : 0.25 + rng.NextDouble() * 2);
      }
    }
  }
  return lists;
}

/// Ground truth: per-id total overlap across all lists.
std::map<RecordId, double> NaiveOverlaps(
    const std::vector<PostingList>& lists,
    const std::vector<double>& probe_scores) {
  std::map<RecordId, double> overlap;
  for (size_t i = 0; i < lists.size(); ++i) {
    for (size_t p = 0; p < lists[i].size(); ++p) {
      overlap[lists[i][p].id] += probe_scores[i] * lists[i][p].score;
    }
  }
  return overlap;
}

std::vector<PostingListView> Views(const std::vector<PostingList>& lists) {
  std::vector<PostingListView> out;
  for (const PostingList& list : lists) out.push_back(list.view());
  return out;
}

class MergerThresholdTest
    : public ::testing::TestWithParam<std::tuple<double, bool, bool>> {};

TEST_P(MergerThresholdTest, FindsExactlyTheIdsAboveThreshold) {
  auto [threshold, split, unit_scores] = GetParam();
  Rng rng(static_cast<uint64_t>(threshold * 10) + split);
  for (int trial = 0; trial < 20; ++trial) {
    int num_lists = rng.UniformInt(1, 12);
    std::vector<PostingList> lists =
        MakeLists(rng, num_lists, 300, 0.15, unit_scores);
    std::vector<double> probe_scores(num_lists);
    for (double& s : probe_scores) {
      s = unit_scores ? 1.0 : 0.25 + rng.NextDouble();
    }
    std::map<RecordId, double> expected_overlap =
        NaiveOverlaps(lists, probe_scores);

    MergeOptions options;
    options.split_lists = split;
    MergeStats stats;
    ListMerger merger(Views(lists), probe_scores, threshold,
                      /*required=*/nullptr, /*filter=*/nullptr, options,
                      &stats);
    std::map<RecordId, double> got;
    MergeCandidate candidate;
    RecordId last = 0;
    bool first = true;
    while (merger.Next(&candidate)) {
      EXPECT_TRUE(first || candidate.id > last) << "ids must ascend";
      first = false;
      last = candidate.id;
      got[candidate.id] = candidate.overlap;
    }

    for (const auto& [id, overlap] : expected_overlap) {
      if (overlap >= threshold) {
        ASSERT_TRUE(got.count(id) > 0)
            << "missed id " << id << " overlap " << overlap
            << " threshold " << threshold << " split " << split;
        EXPECT_NEAR(got[id], overlap, 1e-9);
      }
    }
    // No id below the pruned bound may be emitted.
    for (const auto& [id, overlap] : got) {
      EXPECT_GE(overlap, PruneBound(threshold));
      EXPECT_NEAR(overlap, expected_overlap[id], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergerThresholdTest,
    ::testing::Combine(::testing::Values(1.0, 2.0, 3.0, 5.0, 8.0),
                       ::testing::Bool(), ::testing::Bool()));

TEST(ListMergerTest, PerCandidateRequiredBound) {
  // required() demands more from even ids; odd ids keep the floor.
  Rng rng(42);
  std::vector<PostingList> lists = MakeLists(rng, 6, 200, 0.3, true);
  std::vector<double> scores(6, 1.0);
  std::map<RecordId, double> expected = NaiveOverlaps(lists, scores);

  auto required = [](RecordId id) { return id % 2 == 0 ? 4.0 : 2.0; };
  MergeStats stats;
  ListMerger merger(Views(lists), scores, /*floor=*/2.0, required,
                    nullptr, {}, &stats);
  MergeCandidate candidate;
  std::map<RecordId, double> got;
  while (merger.Next(&candidate)) got[candidate.id] = candidate.overlap;

  for (const auto& [id, overlap] : expected) {
    bool should_emit = overlap >= required(id);
    EXPECT_EQ(got.count(id) > 0, should_emit)
        << "id=" << id << " overlap=" << overlap;
  }
}

TEST(ListMergerTest, FilterSkipsIds) {
  Rng rng(43);
  std::vector<PostingList> lists = MakeLists(rng, 5, 150, 0.3, true);
  std::vector<double> scores(5, 1.0);
  std::map<RecordId, double> expected = NaiveOverlaps(lists, scores);

  auto filter = [](RecordId id) { return id % 3 != 0; };
  MergeStats stats;
  ListMerger merger(Views(lists), scores, 2.0, nullptr, filter, {},
                    &stats);
  MergeCandidate candidate;
  while (merger.Next(&candidate)) {
    EXPECT_NE(candidate.id % 3, 0u) << "filtered id leaked through";
  }
}

TEST(ListMergerTest, RaiseFloorNeverLosesAboveNewFloor) {
  // Raising the floor mid-merge may drop ids below it but must keep every
  // id at or above it, with exact overlaps.
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<PostingList> lists = MakeLists(rng, 8, 250, 0.25, true);
    std::vector<double> scores(8, 1.0);
    std::map<RecordId, double> expected = NaiveOverlaps(lists, scores);

    MergeStats stats;
    ListMerger merger(Views(lists), scores, 1.0, nullptr, nullptr, {},
                      &stats);
    const double final_floor = 4.0;
    std::map<RecordId, double> got;
    MergeCandidate candidate;
    int step = 0;
    while (merger.Next(&candidate)) {
      got[candidate.id] = candidate.overlap;
      if (++step == 5) merger.RaiseFloor(2.5);
      if (step == 10) merger.RaiseFloor(final_floor);
    }
    // After the merge, every id with overlap >= final_floor must have been
    // seen (it was above every intermediate floor too).
    for (const auto& [id, overlap] : expected) {
      if (overlap >= final_floor) {
        ASSERT_TRUE(got.count(id) > 0) << "id=" << id;
        EXPECT_NEAR(got[id], overlap, 1e-9);
      }
    }
  }
}

TEST(ListMergerTest, EmptyInputs) {
  MergeStats stats;
  ListMerger empty({}, {}, 1.0, nullptr, nullptr, {}, &stats);
  MergeCandidate candidate;
  EXPECT_FALSE(empty.Next(&candidate));

  PostingList list;  // empty list
  ListMerger with_empty({list.view()}, {1.0}, 1.0, nullptr, nullptr, {},
                        &stats);
  EXPECT_FALSE(with_empty.Next(&candidate));
}

TEST(ListMergerTest, NegativeFloorEmitsEverything) {
  Rng rng(45);
  std::vector<PostingList> lists = MakeLists(rng, 4, 100, 0.2, true);
  std::vector<double> scores(4, 1.0);
  std::map<RecordId, double> expected = NaiveOverlaps(lists, scores);
  MergeStats stats;
  ListMerger merger(Views(lists), scores, -3.0, nullptr, nullptr, {},
                    &stats);
  size_t count = 0;
  MergeCandidate candidate;
  while (merger.Next(&candidate)) ++count;
  EXPECT_EQ(count, expected.size());
}

TEST(ListMergerTest, SplitReducesHeapWork) {
  // One huge list + several small ones: with the L/S split the huge list
  // must not be heap-merged.
  PostingList huge;
  for (uint32_t id = 0; id < 5000; ++id) huge.Append(id, 1.0);
  PostingList small1, small2, small3;
  for (uint32_t id = 0; id < 5000; id += 100) {
    small1.Append(id, 1.0);
    small2.Append(id, 1.0);
    small3.Append(id, 1.0);
  }
  std::vector<PostingListView> lists = {huge.view(), small1.view(),
                                        small2.view(), small3.view()};
  std::vector<double> scores(4, 1.0);

  MergeStats split_stats;
  {
    ListMerger merger(lists, scores, /*floor=*/2.0, nullptr, nullptr,
                      {.split_lists = true}, &split_stats);
    MergeCandidate c;
    while (merger.Next(&c)) {
    }
  }
  MergeStats plain_stats;
  {
    ListMerger merger(lists, scores, /*floor=*/2.0, nullptr, nullptr,
                      {.split_lists = false}, &plain_stats);
    MergeCandidate c;
    while (merger.Next(&c)) {
    }
  }
  EXPECT_LT(split_stats.heap_pops, plain_stats.heap_pops / 5);
  EXPECT_EQ(split_stats.lists_direct, 1u);
}

}  // namespace
}  // namespace ssjoin
